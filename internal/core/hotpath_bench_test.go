package core

// Hot-path benchmarks for the per-event execution cost of the three
// granularities, the binding-key machinery and per-event attribute
// resolution. These are the regression guards for the interning layer:
// run with -benchmem; the no-equivalence engine paths and the binding
// combine/start operations must stay at 0 allocs/op.

import (
	"fmt"
	"testing"

	"repro/internal/agg"
	"repro/internal/event"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
)

// benchRand is a tiny deterministic xorshift so benchmark streams are
// reproducible without seeding math/rand.
type benchRand uint64

func (r *benchRand) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = benchRand(x)
	return x
}

// typeBenchStream emits (SEQ(A+,B))+-shaped traffic: runs of A events
// closed by a B, with a cycling symbolic account and a numeric value.
func typeBenchStream(n int) []*event.Event {
	r := benchRand(42)
	out := make([]*event.Event, 0, n)
	for i := 0; i < n; i++ {
		typ := "A"
		if i%4 == 3 {
			typ = "B"
		}
		out = append(out, event.New(typ, int64(i)).
			WithSym("acct", fmt.Sprintf("acct-%d", r.next()%4)).
			WithNum("v", float64(r.next()%1000)))
	}
	return out
}

// measureBenchStream emits M+ traffic partitioned over four patients
// with a random-walk rate, the q1/q2-style workload.
func measureBenchStream(n int) []*event.Event {
	r := benchRand(7)
	rates := [4]float64{60, 70, 80, 90}
	out := make([]*event.Event, 0, n)
	for i := 0; i < n; i++ {
		p := int(r.next() % 4)
		rates[p] += float64(int(r.next()%7)) - 3
		out = append(out, event.New("Measurement", int64(i)).
			WithSym("patient", fmt.Sprintf("p%d", p)).
			WithNum("rate", rates[p]))
	}
	return out
}

func benchEngine(b *testing.B, q *query.Query, events []*event.Event) {
	b.Helper()
	plan := MustPlan(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(plan)
		if err := eng.ProcessAll(events); err != nil {
			b.Fatal(err)
		}
		eng.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineProcessTypeGrained is the no-equivalence fast path:
// one aggregate per pattern type, no binding slots, no partitions.
func BenchmarkEngineProcessTypeGrained(b *testing.B) {
	q := query.NewBuilder(pattern.Plus(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))).
		Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Sum, Alias: "A", Attr: "v"}).
		Semantics(query.Any).
		Within(1024, 1024).
		MustBuild()
	benchEngine(b, q, typeBenchStream(4096))
}

// BenchmarkEngineProcessTypeGrainedSlots adds an alias-scoped
// equivalence predicate, exercising binding-key combine per event.
func BenchmarkEngineProcessTypeGrainedSlots(b *testing.B) {
	q := query.NewBuilder(pattern.Plus(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))).
		Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Sum, Alias: "A", Attr: "v"}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Alias: "A", Attr: "acct"}).
		Within(1024, 1024).
		MustBuild()
	benchEngine(b, q, typeBenchStream(4096))
}

// BenchmarkEngineProcessMixedAdjacent is the adjacent-predicate
// workload: mixed granularity stores every M event and evaluates the
// predicate against each stored predecessor.
func BenchmarkEngineProcessMixedAdjacent(b *testing.B) {
	q := query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Attr: "patient"}).
		WhereAdjacent(predicate.Adjacent{Left: "M", LeftAttr: "rate", Op: predicate.Lt, Right: "M", RightAttr: "rate"}).
		GroupBy(query.GroupKey{Attr: "patient"}).
		Within(512, 512).
		MustBuild()
	benchEngine(b, q, measureBenchStream(4096))
}

// BenchmarkEngineProcessMixedAdjacentSlots combines stored-event scans
// with alias-scoped binding keys.
func BenchmarkEngineProcessMixedAdjacentSlots(b *testing.B) {
	q := query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Alias: "M", Attr: "patient"}).
		WhereAdjacent(predicate.Adjacent{Left: "M", LeftAttr: "rate", Op: predicate.Lt, Right: "M", RightAttr: "rate"}).
		Within(512, 512).
		MustBuild()
	benchEngine(b, q, measureBenchStream(4096))
}

// BenchmarkEngineProcessMixedAdjacentNumFn is the Fig9-style workload
// with a user-supplied predicate function in its typed float64 form:
// unlike the untyped Fn variant, operands reach the function unboxed,
// so the dominant stored-event scan performs no allocations.
func BenchmarkEngineProcessMixedAdjacentNumFn(b *testing.B) {
	q := query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Attr: "patient"}).
		WhereAdjacent(predicate.Adjacent{Left: "M", LeftAttr: "rate", Right: "M", RightAttr: "rate",
			NumFn: func(prev, next float64) bool { return prev < next }}).
		GroupBy(query.GroupKey{Attr: "patient"}).
		Within(512, 512).
		MustBuild()
	benchEngine(b, q, measureBenchStream(4096))
}

// BenchmarkEngineProcessMixedAdjacentAnyFn is the same workload with
// the untyped Fn fallback, kept as the boxing-cost baseline.
func BenchmarkEngineProcessMixedAdjacentAnyFn(b *testing.B) {
	q := query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Attr: "patient"}).
		WhereAdjacent(predicate.Adjacent{Left: "M", LeftAttr: "rate", Right: "M", RightAttr: "rate",
			Fn: func(prev, next any) bool {
				l, lok := prev.(float64)
				r, rok := next.(float64)
				return lok && rok && l < r
			}}).
		GroupBy(query.GroupKey{Attr: "patient"}).
		Within(512, 512).
		MustBuild()
	benchEngine(b, q, measureBenchStream(4096))
}

// denseBenchStream is typeBenchStream with runs of equal time stamps:
// runLen events share each tick, the §8 stream-transaction shape that
// the hoisted watermark/window-state path exploits.
func denseBenchStream(n, runLen int) []*event.Event {
	out := typeBenchStream(n)
	for i := range out {
		out[i].Time = int64(i / runLen)
	}
	return out
}

// BenchmarkEngineProcessDenseTimestamps measures the equal-time-stamp
// fast path: with 16 events per tick the watermark check and the
// window-state lookup run once per tick instead of once per event.
func BenchmarkEngineProcessDenseTimestamps(b *testing.B) {
	q := query.NewBuilder(pattern.Plus(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))).
		Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Sum, Alias: "A", Attr: "v"}).
		Semantics(query.Any).
		Within(64, 64).
		MustBuild()
	benchEngine(b, q, denseBenchStream(4096, 16))
}

// BenchmarkEngineProcessPatternGrained is the O(1)-state contiguous
// path with an adjacent predicate and stream partitioning.
func BenchmarkEngineProcessPatternGrained(b *testing.B) {
	q := query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Cont).
		WhereEquiv(predicate.Equivalence{Attr: "patient"}).
		WhereAdjacent(predicate.Adjacent{Left: "M", LeftAttr: "rate", Op: predicate.Lt, Right: "M", RightAttr: "rate"}).
		GroupBy(query.GroupKey{Attr: "patient"}).
		Within(512, 512).
		MustBuild()
	benchEngine(b, q, measureBenchStream(4096))
}

// BenchmarkMixedAdjacentArena measures the arena-backed event store
// under heavy window churn: the MixedAdjacent workload with 64-tick
// tumbling windows expires a window every 64 events, freeing the
// epoch's stored entries wholesale back to the engine-owned arenas.
// Steady-state allocs/op is the gate — cell recycling must keep it
// far below one allocation per stored event.
func BenchmarkMixedAdjacentArena(b *testing.B) {
	q := query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Attr: "patient"}).
		WhereAdjacent(predicate.Adjacent{Left: "M", LeftAttr: "rate", Op: predicate.Lt, Right: "M", RightAttr: "rate"}).
		GroupBy(query.GroupKey{Attr: "patient"}).
		Within(64, 64).
		MustBuild()
	benchEngine(b, q, measureBenchStream(4096))
}

// BenchmarkEngineProcessRunKernel measures the batch-kernel execution
// path (ResolveRun + ProcessResolvedRun) on dense same-time type runs
// — the regression guard for the hoisted per-run prologue: admission
// check, dispatch-table lookup and spec projection install run once
// per run, so re-introducing a per-event subscription-index read
// shows up directly as lost events/s here.
func BenchmarkEngineProcessRunKernel(b *testing.B) {
	q := query.NewBuilder(pattern.Plus(pattern.Seq(pattern.Plus(pattern.Type("A")), pattern.Type("B")))).
		Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Sum, Alias: "A", Attr: "v"}).
		Semantics(query.Any).
		Within(64, 64).
		MustBuild()
	plan := MustPlan(q)
	events := denseBenchStream(4096, 16)
	// Pre-bucket the stream into runs (same time, same type, arrival
	// order) so the loop measures kernel execution, not bucketing.
	type runSpec struct {
		tid    int32
		events []*event.Event
	}
	var runs []runSpec
	for start := 0; start < len(events); {
		end := start + 1
		for end < len(events) && events[end].Time == events[start].Time && events[end].Type == events[start].Type {
			end++
		}
		tid, ok := plan.Catalog().TypeID(events[start].Type)
		if !ok {
			b.Fatalf("type %s not interned", events[start].Type)
		}
		runs = append(runs, runSpec{tid, events[start:end]})
		start = end
	}
	attrs := plan.ReferencedAttrIDs()
	res := NewResolver(plan.Catalog())
	var run ResolvedRun
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(plan)
		for _, rs := range runs {
			res.ResolveRun(&run, rs.events, rs.tid, attrs)
			if err := eng.ProcessResolvedRun(&run); err != nil {
				b.Fatal(err)
			}
		}
		eng.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// TestHotPathZeroAllocs enforces the interning layer's allocation
// invariants as a regular test, so a regression fails `go test ./...`
// rather than only shifting benchmark output: steady-state binding
// combine (packed and interned-vector), value interning of seen
// values, and per-event resolve must not allocate.
func TestHotPathZeroAllocs(t *testing.T) {
	packed := newBindings([]predicate.Equivalence{
		{Alias: "A", Attr: "x"}, {Alias: "B", Attr: "y"},
	}, nopAccountant{}, false)
	pAssigns := []slotAssign{{idx: 0, val: packed.internVal("v1")}}
	pKey := packed.startKey([]slotAssign{{idx: 1, val: packed.internVal("v2")}})
	if n := testing.AllocsPerRun(1000, func() { packed.combine(pKey, pAssigns) }); n != 0 {
		t.Errorf("packed combine allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { packed.internVal("v1") }); n != 0 {
		t.Errorf("repeat internVal allocates %v/op", n)
	}

	wide := newBindings([]predicate.Equivalence{
		{Alias: "A", Attr: "x"}, {Alias: "B", Attr: "y"}, {Alias: "C", Attr: "z"},
	}, nopAccountant{}, false)
	wAssigns := []slotAssign{{idx: 0, val: wide.internVal("v1")}}
	wKey := wide.startKey([]slotAssign{{idx: 2, val: wide.internVal("v3")}})
	wide.combine(wKey, wAssigns) // pre-intern the result vector
	if n := testing.AllocsPerRun(1000, func() { wide.combine(wKey, wAssigns) }); n != 0 {
		t.Errorf("vector combine allocates %v/op", n)
	}

	q := query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
		Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Avg, Alias: "M", Attr: "rate"}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Attr: "patient"}).
		Within(512, 512).
		MustBuild()
	plan := MustPlan(q)
	ev := event.New("Measurement", 1).WithSym("patient", "p1").WithNum("rate", 60)
	var rv resolvedVals
	plan.resolveInto(&rv, ev) // warm the scratch buffers
	if n := testing.AllocsPerRun(1000, func() { plan.resolveInto(&rv, ev) }); n != 0 {
		t.Errorf("resolveInto allocates %v/op", n)
	}

	// Typed NumFn adjacent predicates evaluate without boxing; the
	// untyped Fn fallback is known to allocate (interface contract).
	qn := query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereAdjacent(predicate.Adjacent{Left: "M", LeftAttr: "rate", Right: "M", RightAttr: "rate",
			NumFn: func(prev, next float64) bool { return prev < next }}).
		Within(512, 512).
		MustBuild()
	plann := MustPlan(qn)
	var rvn resolvedVals
	plann.resolveInto(&rvn, event.New("Measurement", 1).WithNum("rate", 60))
	left := plann.copyLeftVals(nil, &rvn) // stored predecessor: rate=60
	plann.resolveInto(&rvn, event.New("Measurement", 2).WithNum("rate", 61))
	edge := &rvn.tp.aliases[0].preds[0]
	if !evalAdjacent(edge.adj, left, &rvn) {
		t.Fatal("NumFn adjacent check rejected an increasing pair")
	}
	if n := testing.AllocsPerRun(1000, func() { evalAdjacent(edge.adj, left, &rvn) }); n != 0 {
		t.Errorf("NumFn adjacent evaluation allocates %v/op", n)
	}
}

// BenchmarkBindingCombine measures combine/startKey on the packed
// (≤2 slot) representation; both must be allocation-free.
func BenchmarkBindingCombine(b *testing.B) {
	bnd := newBindings([]predicate.Equivalence{
		{Alias: "A", Attr: "x"}, {Alias: "B", Attr: "y"},
	}, nopAccountant{}, false)
	assigns := []slotAssign{{idx: 0, val: bnd.internVal("v1")}}
	partial := bnd.startKey([]slotAssign{{idx: 1, val: bnd.internVal("v2")}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := bnd.combine(partial, assigns); !ok {
			b.Fatal("combine rejected compatible assignment")
		}
	}
}

// BenchmarkBindingCombineWide exercises the interned-vector fallback
// for plans with more than two slots; steady-state combine re-interns
// an already-seen vector without allocating.
func BenchmarkBindingCombineWide(b *testing.B) {
	bnd := newBindings([]predicate.Equivalence{
		{Alias: "A", Attr: "x"}, {Alias: "B", Attr: "y"}, {Alias: "C", Attr: "z"},
	}, nopAccountant{}, false)
	assigns := []slotAssign{{idx: 0, val: bnd.internVal("v1")}}
	partial := bnd.startKey([]slotAssign{{idx: 2, val: bnd.internVal("v3")}})
	if _, ok := bnd.combine(partial, assigns); !ok { // pre-intern the result vector
		b.Fatal("combine rejected compatible assignment")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := bnd.combine(partial, assigns); !ok {
			b.Fatal("combine rejected compatible assignment")
		}
	}
}

// BenchmarkBindingIntern measures value interning on the repeat path
// (the per-event case: the value has been seen before).
func BenchmarkBindingIntern(b *testing.B) {
	bnd := newBindings([]predicate.Equivalence{{Alias: "A", Attr: "x"}}, nopAccountant{}, false)
	bnd.internVal("account-42")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bnd.internVal("account-42")
	}
}

// BenchmarkResolveView measures per-event resolved-view construction —
// the one probe pass that replaces all downstream map lookups.
func BenchmarkResolveView(b *testing.B) {
	q := query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
		Return(agg.Spec{Func: agg.CountStar}, agg.Spec{Func: agg.Avg, Alias: "M", Attr: "rate"}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Attr: "patient"}).
		WhereAdjacent(predicate.Adjacent{Left: "M", LeftAttr: "rate", Op: predicate.Lt, Right: "M", RightAttr: "rate"}).
		GroupBy(query.GroupKey{Attr: "patient"}).
		Within(512, 512).
		MustBuild()
	plan := MustPlan(q)
	ev := event.New("Measurement", 1).WithSym("patient", "p1").WithNum("rate", 60)
	var rv resolvedVals
	plan.resolveInto(&rv, ev) // warm the scratch buffers
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan.resolveInto(&rv, ev)
	}
}

// BenchmarkStreamKeyOf measures per-event partition-key extraction.
func BenchmarkStreamKeyOf(b *testing.B) {
	q := query.NewBuilder(pattern.Plus(pattern.TypeAs("Measurement", "M"))).
		Return(agg.Spec{Func: agg.CountStar}).
		Semantics(query.Any).
		WhereEquiv(predicate.Equivalence{Attr: "patient"}).
		GroupBy(query.GroupKey{Attr: "patient"}).
		Within(512, 512).
		MustBuild()
	plan := MustPlan(q)
	ev := event.New("Measurement", 1).WithSym("patient", "p1").WithNum("rate", 60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := plan.StreamKeyOf(ev); !ok {
			b.Fatal("no key")
		}
	}
}
