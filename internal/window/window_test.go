package window

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestWindowsOfQ1Style(t *testing.T) {
	// WITHIN 600 SLIDE 30 (q1: 10 minutes / 30 seconds).
	s := Spec{Within: 600, Slide: 30}
	first, last := s.WindowsOf(0)
	if first != 0 || last != 0 {
		t.Errorf("WindowsOf(0) = [%d,%d]", first, last)
	}
	first, last = s.WindowsOf(599)
	if first != 0 || last != 19 {
		t.Errorf("WindowsOf(599) = [%d,%d], want [0,19]", first, last)
	}
	first, last = s.WindowsOf(600)
	if first != 1 || last != 20 {
		t.Errorf("WindowsOf(600) = [%d,%d], want [1,20]", first, last)
	}
	if got := s.MaxConcurrent(); got != 20 {
		t.Errorf("MaxConcurrent = %d, want 20", got)
	}
}

func TestBoundsAndMembershipAgreeProperty(t *testing.T) {
	f := func(rawW, rawS, rawT uint16) bool {
		s := Spec{Within: int64(rawW%500) + 1, Slide: int64(rawS%100) + 1}
		tm := int64(rawT % 2000)
		first, last := s.WindowsOf(tm)
		// Exhaustively check membership against Bounds over a range
		// safely covering all candidate windows. first > last is legal
		// when Slide > Within leaves gaps.
		for wid := int64(0); wid <= tm/s.Slide+2; wid++ {
			lo, hi := s.Bounds(wid)
			member := lo <= tm && tm < hi
			inRange := first <= wid && wid <= last
			if member != inRange {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestClosedBefore(t *testing.T) {
	s := Spec{Within: 10, Slide: 5}
	// Window 0 = [0,10). Closed once watermark reaches 10.
	if got := s.ClosedBefore(9); got != -1 {
		t.Errorf("ClosedBefore(9) = %d, want -1", got)
	}
	if got := s.ClosedBefore(10); got != 0 {
		t.Errorf("ClosedBefore(10) = %d, want 0", got)
	}
	if got := s.ClosedBefore(20); got != 2 {
		t.Errorf("ClosedBefore(20) = %d, want 2", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Spec{Within: 10, Slide: 5}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (Spec{Within: 0, Slide: 5}).Validate(); err == nil {
		t.Error("zero WITHIN accepted")
	}
	if err := (Spec{Within: 10, Slide: 0}).Validate(); err == nil {
		t.Error("zero SLIDE accepted")
	}
}

func TestManagerLifecycle(t *testing.T) {
	created := []int64{}
	m := NewManager(Spec{Within: 10, Slide: 5}, func(wid int64) *int {
		created = append(created, wid)
		v := 0
		return &v
	})
	// t=7 belongs to windows 0 ([0,10)) and 1 ([5,15)).
	states := m.StatesFor(7)
	if len(states) != 2 || !reflect.DeepEqual(created, []int64{0, 1}) {
		t.Fatalf("StatesFor(7): %d states, created %v", len(states), created)
	}
	for _, st := range states {
		*st++
	}
	// Same windows again: no new state.
	m.StatesFor(9)
	if len(created) != 2 {
		t.Errorf("states recreated: %v", created)
	}
	if m.ActiveCount() != 2 {
		t.Errorf("ActiveCount = %d", m.ActiveCount())
	}
	// Watermark 12 closes window 0 only.
	closed := m.AdvanceTo(12)
	if len(closed) != 1 || closed[0].Wid != 0 || *closed[0].State != 1 {
		t.Fatalf("AdvanceTo(12) = %+v", closed)
	}
	if m.ActiveCount() != 1 {
		t.Errorf("ActiveCount after close = %d", m.ActiveCount())
	}
	// Flush emits the rest in order.
	rest := m.Flush()
	if len(rest) != 1 || rest[0].Wid != 1 {
		t.Fatalf("Flush = %+v", rest)
	}
	if m.ActiveCount() != 0 {
		t.Error("states remain after Flush")
	}
}

func TestManagerSkipsEmittedWindows(t *testing.T) {
	m := NewManager(Spec{Within: 10, Slide: 5}, func(wid int64) int64 { return wid })
	m.StatesFor(3)
	m.AdvanceTo(100) // closes everything so far
	// A late event for an already-emitted window must not resurrect it.
	states := m.StatesFor(3)
	if len(states) != 0 {
		t.Errorf("late event resurrected %d windows", len(states))
	}
	// AdvanceTo with an older watermark is a no-op.
	if closed := m.AdvanceTo(50); closed != nil {
		t.Errorf("regressed watermark closed %v", closed)
	}
}

func TestManagerEmitsInWidOrder(t *testing.T) {
	m := NewManager(Spec{Within: 4, Slide: 2}, func(wid int64) int64 { return wid })
	for _, tm := range []int64{9, 1, 5, 3, 7} { // touch windows out of order
		m.StatesFor(tm)
	}
	closed := m.AdvanceTo(100)
	var wids []int64
	for _, c := range closed {
		wids = append(wids, c.Wid)
	}
	for i := 1; i < len(wids); i++ {
		if wids[i-1] >= wids[i] {
			t.Fatalf("emission out of order: %v", wids)
		}
	}
}

func TestTumblingWindow(t *testing.T) {
	// Slide == Within: each event in exactly one window.
	s := Spec{Within: 10, Slide: 10}
	for tm := int64(0); tm < 100; tm++ {
		first, last := s.WindowsOf(tm)
		if first != last || first != tm/10 {
			t.Fatalf("tumbling WindowsOf(%d) = [%d,%d]", tm, first, last)
		}
	}
	if got := s.MaxConcurrent(); got != 1 {
		t.Errorf("MaxConcurrent = %d", got)
	}
}

func TestHoppingLargerSlide(t *testing.T) {
	// Slide > Within: gaps between windows; some times in no window.
	s := Spec{Within: 5, Slide: 10}
	first, last := s.WindowsOf(7) // [0,5) and [10,15) exclude 7
	if first <= last {
		t.Errorf("time in gap reported windows [%d,%d]", first, last)
	}
	first, last = s.WindowsOf(12)
	if first != 1 || last != 1 {
		t.Errorf("WindowsOf(12) = [%d,%d], want [1,1]", first, last)
	}
}

func TestFlushTwiceIsEmpty(t *testing.T) {
	m := NewManager(Spec{Within: 10, Slide: 10}, func(wid int64) int64 { return wid })
	m.StatesFor(5)
	if got := len(m.Flush()); got != 1 {
		t.Fatalf("first Flush = %d", got)
	}
	if got := len(m.Flush()); got != 0 {
		t.Errorf("second Flush = %d, want 0", got)
	}
}

// TestManagerWidGapsAcrossIdlePeriods: an idle stream period skips
// window ids entirely — windows nothing landed in are neither created
// nor emitted, and the emitted cursor jumps the gap without
// materialising intermediate states.
func TestManagerWidGapsAcrossIdlePeriods(t *testing.T) {
	created := []int64{}
	m := NewManager(Spec{Within: 10, Slide: 10}, func(wid int64) int64 {
		created = append(created, wid)
		return wid
	})
	m.StatesFor(3) // window 0
	// Long idle gap: the next event lands in window 100.
	closed := m.AdvanceTo(1000)
	if len(closed) != 1 || closed[0].Wid != 0 {
		t.Fatalf("AdvanceTo(1000) = %+v, want only wid 0", closed)
	}
	states := m.StatesFor(1000) // window 100
	if len(states) != 1 || states[0] != 100 {
		t.Fatalf("StatesFor(1000) = %v, want [100]", states)
	}
	if !reflect.DeepEqual(created, []int64{0, 100}) {
		t.Errorf("created windows %v; idle-gap windows materialised", created)
	}
	// The gap windows 1..99 never existed, so nothing further closes
	// until window 100's own close time.
	if closed := m.AdvanceTo(1009); len(closed) != 0 {
		t.Errorf("gap advance closed %v", closed)
	}
	if closed := m.AdvanceTo(1010); len(closed) != 1 || closed[0].Wid != 100 {
		t.Errorf("AdvanceTo(1010) = %+v, want wid 100", closed)
	}
}

// TestManagerFlushAfterAdvanceTo: Flush only emits what AdvanceTo has
// not, never re-emits, and leaves the emitted cursor past everything
// so stragglers cannot resurrect flushed windows.
func TestManagerFlushAfterAdvanceTo(t *testing.T) {
	m := NewManager(Spec{Within: 10, Slide: 5}, func(wid int64) int64 { return wid })
	m.StatesFor(7)  // windows 0, 1
	m.StatesFor(12) // windows 1, 2
	if closed := m.AdvanceTo(12); len(closed) != 1 || closed[0].Wid != 0 {
		t.Fatalf("AdvanceTo(12) = %+v, want wid 0", closed)
	}
	rest := m.Flush()
	if len(rest) != 2 || rest[0].Wid != 1 || rest[1].Wid != 2 {
		t.Fatalf("Flush after AdvanceTo = %+v, want wids 1,2", rest)
	}
	// Late events into flushed windows are dropped...
	if states := m.StatesFor(12); len(states) != 0 {
		t.Errorf("flushed window resurrected: %v", states)
	}
	// ...but genuinely new windows past the flush still open.
	if states := m.StatesFor(15); len(states) != 1 || states[0] != 3 {
		t.Errorf("StatesFor(15) after flush = %v, want [3]", states)
	}
}

// TestManagerLateEventPartialOverlap: an event whose window range
// straddles the emitted boundary contributes only to the still-open
// windows — the emitted prefix is clamped off.
func TestManagerLateEventPartialOverlap(t *testing.T) {
	m := NewManager(Spec{Within: 15, Slide: 5}, func(wid int64) int64 { return wid })
	// t=16 belongs to windows 1 ([5,20)), 2 ([10,25)), 3 ([15,30)).
	if states := m.StatesFor(16); len(states) != 3 {
		t.Fatalf("StatesFor(16) = %v", states)
	}
	// Watermark 21 closes windows 0 (empty, skipped) and 1.
	if closed := m.AdvanceTo(21); len(closed) != 1 || closed[0].Wid != 1 {
		t.Fatalf("AdvanceTo(21) = %+v, want wid 1", closed)
	}
	// Another t=16 event (same watermark) now reaches only 2 and 3.
	states := m.StatesFor(16)
	if len(states) != 2 || states[0] != 2 || states[1] != 3 {
		t.Errorf("late StatesFor(16) = %v, want [2 3]", states)
	}
}

// TestManagerAppendStatesForReusesDst: the append variant fills the
// caller's scratch slice without reallocating when capacity suffices.
func TestManagerAppendStatesForReusesDst(t *testing.T) {
	m := NewManager(Spec{Within: 10, Slide: 5}, func(wid int64) int64 { return wid })
	scratch := make([]int64, 0, 8)
	out := m.AppendStatesFor(scratch, 7)
	if len(out) != 2 || cap(out) != 8 {
		t.Errorf("AppendStatesFor reallocated: len=%d cap=%d", len(out), cap(out))
	}
	out2 := m.AppendStatesFor(out[:0], 7)
	if len(out2) != 2 || &out2[0] != &out[0] {
		t.Error("AppendStatesFor did not reuse the scratch slice")
	}
}

// TestFirstFullWindow pins the partial-first-window semantics of
// mid-stream subscription: a window is fully covered by an observer
// joining at watermark t only if its start lies strictly after t.
func TestFirstFullWindow(t *testing.T) {
	s := Spec{Within: 10, Slide: 5}
	for _, c := range []struct {
		t    int64
		want int64
	}{
		{0, 1},  // window 0 covers time 0: partial
		{4, 1},  // window 1 starts at 5 > 4
		{5, 2},  // window 1 covers time 5: partial
		{14, 3}, // window 3 starts at 15
		{15, 4},
	} {
		if got := s.FirstFullWindow(c.t); got != c.want {
			t.Errorf("FirstFullWindow(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	// Slide > Within leaves gaps but the rule is the same.
	g := Spec{Within: 5, Slide: 20}
	if got := g.FirstFullWindow(19); got != 1 {
		t.Errorf("gapped FirstFullWindow(19) = %d, want 1", got)
	}
}

// countState is a per-window event counter for the SkipBefore tests.
type countState struct {
	wid int64
	n   int
}

// TestManagerSkipBefore: suppressed windows are neither created nor
// emitted, later windows behave normally, and the floor never moves
// backward.
func TestManagerSkipBefore(t *testing.T) {
	m := NewManager(Spec{Within: 10, Slide: 10}, func(wid int64) *countState {
		return &countState{wid: wid}
	})
	m.SkipBefore(2) // observer joined at watermark in window 1
	m.SkipBefore(1) // floor must not regress
	for _, tm := range []int64{5, 15, 25, 35} {
		for _, st := range m.StatesFor(tm) {
			st.n++
		}
	}
	var got []int64
	for _, c := range m.AdvanceTo(40) {
		got = append(got, c.Wid)
		if c.State.n != 1 {
			t.Errorf("window %d counted %d events, want 1", c.Wid, c.State.n)
		}
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("emitted wids = %v, want [2 3]", got)
	}
	if m.ActiveCount() != 0 {
		t.Errorf("active = %d", m.ActiveCount())
	}
	// A floor above already-active windows drops them.
	m2 := NewManager(Spec{Within: 10, Slide: 10}, func(wid int64) *countState {
		return &countState{wid: wid}
	})
	m2.StatesFor(5)
	m2.SkipBefore(3)
	if out := m2.Flush(); len(out) != 0 {
		t.Errorf("flushed suppressed windows: %v", out)
	}
}
