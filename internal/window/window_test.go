package window

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestWindowsOfQ1Style(t *testing.T) {
	// WITHIN 600 SLIDE 30 (q1: 10 minutes / 30 seconds).
	s := Spec{Within: 600, Slide: 30}
	first, last := s.WindowsOf(0)
	if first != 0 || last != 0 {
		t.Errorf("WindowsOf(0) = [%d,%d]", first, last)
	}
	first, last = s.WindowsOf(599)
	if first != 0 || last != 19 {
		t.Errorf("WindowsOf(599) = [%d,%d], want [0,19]", first, last)
	}
	first, last = s.WindowsOf(600)
	if first != 1 || last != 20 {
		t.Errorf("WindowsOf(600) = [%d,%d], want [1,20]", first, last)
	}
	if got := s.MaxConcurrent(); got != 20 {
		t.Errorf("MaxConcurrent = %d, want 20", got)
	}
}

func TestBoundsAndMembershipAgreeProperty(t *testing.T) {
	f := func(rawW, rawS, rawT uint16) bool {
		s := Spec{Within: int64(rawW%500) + 1, Slide: int64(rawS%100) + 1}
		tm := int64(rawT % 2000)
		first, last := s.WindowsOf(tm)
		// Exhaustively check membership against Bounds over a range
		// safely covering all candidate windows. first > last is legal
		// when Slide > Within leaves gaps.
		for wid := int64(0); wid <= tm/s.Slide+2; wid++ {
			lo, hi := s.Bounds(wid)
			member := lo <= tm && tm < hi
			inRange := first <= wid && wid <= last
			if member != inRange {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestClosedBefore(t *testing.T) {
	s := Spec{Within: 10, Slide: 5}
	// Window 0 = [0,10). Closed once watermark reaches 10.
	if got := s.ClosedBefore(9); got != -1 {
		t.Errorf("ClosedBefore(9) = %d, want -1", got)
	}
	if got := s.ClosedBefore(10); got != 0 {
		t.Errorf("ClosedBefore(10) = %d, want 0", got)
	}
	if got := s.ClosedBefore(20); got != 2 {
		t.Errorf("ClosedBefore(20) = %d, want 2", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Spec{Within: 10, Slide: 5}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (Spec{Within: 0, Slide: 5}).Validate(); err == nil {
		t.Error("zero WITHIN accepted")
	}
	if err := (Spec{Within: 10, Slide: 0}).Validate(); err == nil {
		t.Error("zero SLIDE accepted")
	}
}

func TestManagerLifecycle(t *testing.T) {
	created := []int64{}
	m := NewManager(Spec{Within: 10, Slide: 5}, func(wid int64) *int {
		created = append(created, wid)
		v := 0
		return &v
	})
	// t=7 belongs to windows 0 ([0,10)) and 1 ([5,15)).
	states := m.StatesFor(7)
	if len(states) != 2 || !reflect.DeepEqual(created, []int64{0, 1}) {
		t.Fatalf("StatesFor(7): %d states, created %v", len(states), created)
	}
	for _, st := range states {
		*st++
	}
	// Same windows again: no new state.
	m.StatesFor(9)
	if len(created) != 2 {
		t.Errorf("states recreated: %v", created)
	}
	if m.ActiveCount() != 2 {
		t.Errorf("ActiveCount = %d", m.ActiveCount())
	}
	// Watermark 12 closes window 0 only.
	closed := m.AdvanceTo(12)
	if len(closed) != 1 || closed[0].Wid != 0 || *closed[0].State != 1 {
		t.Fatalf("AdvanceTo(12) = %+v", closed)
	}
	if m.ActiveCount() != 1 {
		t.Errorf("ActiveCount after close = %d", m.ActiveCount())
	}
	// Flush emits the rest in order.
	rest := m.Flush()
	if len(rest) != 1 || rest[0].Wid != 1 {
		t.Fatalf("Flush = %+v", rest)
	}
	if m.ActiveCount() != 0 {
		t.Error("states remain after Flush")
	}
}

func TestManagerSkipsEmittedWindows(t *testing.T) {
	m := NewManager(Spec{Within: 10, Slide: 5}, func(wid int64) int64 { return wid })
	m.StatesFor(3)
	m.AdvanceTo(100) // closes everything so far
	// A late event for an already-emitted window must not resurrect it.
	states := m.StatesFor(3)
	if len(states) != 0 {
		t.Errorf("late event resurrected %d windows", len(states))
	}
	// AdvanceTo with an older watermark is a no-op.
	if closed := m.AdvanceTo(50); closed != nil {
		t.Errorf("regressed watermark closed %v", closed)
	}
}

func TestManagerEmitsInWidOrder(t *testing.T) {
	m := NewManager(Spec{Within: 4, Slide: 2}, func(wid int64) int64 { return wid })
	for _, tm := range []int64{9, 1, 5, 3, 7} { // touch windows out of order
		m.StatesFor(tm)
	}
	closed := m.AdvanceTo(100)
	var wids []int64
	for _, c := range closed {
		wids = append(wids, c.Wid)
	}
	for i := 1; i < len(wids); i++ {
		if wids[i-1] >= wids[i] {
			t.Fatalf("emission out of order: %v", wids)
		}
	}
}

func TestTumblingWindow(t *testing.T) {
	// Slide == Within: each event in exactly one window.
	s := Spec{Within: 10, Slide: 10}
	for tm := int64(0); tm < 100; tm++ {
		first, last := s.WindowsOf(tm)
		if first != last || first != tm/10 {
			t.Fatalf("tumbling WindowsOf(%d) = [%d,%d]", tm, first, last)
		}
	}
	if got := s.MaxConcurrent(); got != 1 {
		t.Errorf("MaxConcurrent = %d", got)
	}
}

func TestHoppingLargerSlide(t *testing.T) {
	// Slide > Within: gaps between windows; some times in no window.
	s := Spec{Within: 5, Slide: 10}
	first, last := s.WindowsOf(7) // [0,5) and [10,15) exclude 7
	if first <= last {
		t.Errorf("time in gap reported windows [%d,%d]", first, last)
	}
	first, last = s.WindowsOf(12)
	if first != 1 || last != 1 {
		t.Errorf("WindowsOf(12) = [%d,%d], want [1,1]", first, last)
	}
}

func TestFlushTwiceIsEmpty(t *testing.T) {
	m := NewManager(Spec{Within: 10, Slide: 10}, func(wid int64) int64 { return wid })
	m.StatesFor(5)
	if got := len(m.Flush()); got != 1 {
		t.Fatalf("first Flush = %d", got)
	}
	if got := len(m.Flush()); got != 0 {
		t.Errorf("second Flush = %d, want 0", got)
	}
}
