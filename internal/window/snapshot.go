package window

import "sort"

// Checkpoint accessors. The manager's bookkeeping (active wids,
// emission cursor, max wid) is private on purpose — these two hooks
// expose exactly what a snapshot needs, keeping the state-machine
// invariants (emitted only moves forward, active never holds emitted
// wids) inside the package.

// Cursor returns the watermark bookkeeping: the emission cursor (all
// wids < emitted are closed), the largest wid ever seen, and whether
// any window was ever created.
func (m *Manager[T]) Cursor() (emitted, maxWid int64, everSawWid bool) {
	return m.emitted, m.maxWid, m.everSawWid
}

// ActiveWids returns the live window ids in ascending order.
func (m *Manager[T]) ActiveWids() []int64 {
	wids := make([]int64, 0, len(m.active))
	for wid := range m.active {
		wids = append(wids, wid)
	}
	sort.Slice(wids, func(i, j int) bool { return wids[i] < wids[j] })
	return wids
}

// State returns the live state of one window id.
func (m *Manager[T]) State(wid int64) (T, bool) {
	st, ok := m.active[wid]
	return st, ok
}

// RestoreCursor sets the watermark bookkeeping verbatim; used by
// checkpoint restore before re-adding window states.
func (m *Manager[T]) RestoreCursor(emitted, maxWid int64, everSawWid bool) {
	m.emitted, m.maxWid, m.everSawWid = emitted, maxWid, everSawWid
}

// RestoreState re-installs one live window state verbatim.
func (m *Manager[T]) RestoreState(wid int64, st T) {
	m.active[wid] = st
}

// RestoreCeiling re-installs a SkipFrom ceiling verbatim.
func (m *Manager[T]) RestoreCeiling(ceil int64, hasCeil bool) {
	m.ceil, m.hasCeil = ceil, hasCeil
}
