// Package window implements the WITHIN/SLIDE sliding-window clause
// (§2.3, §7). The unbounded stream is partitioned into overlapping
// finite intervals; window wid covers the half-open time interval
// [wid*Slide, wid*Slide+Within). An event may fall into several
// windows, expire in some and remain valid in others, so every
// aggregate is maintained per window identifier (the paper adopts the
// wid technique of Li et al. [21]).
package window

import (
	"fmt"
	"sort"
)

// Spec is the WITHIN w SLIDE s clause in stream time units.
type Spec struct {
	// Within is the window length w (> 0).
	Within int64
	// Slide is the slide interval s (> 0, usually <= Within).
	Slide int64
}

// Validate reports an error for non-positive lengths.
func (s Spec) Validate() error {
	if s.Within <= 0 {
		return fmt.Errorf("window: WITHIN must be positive, got %d", s.Within)
	}
	if s.Slide <= 0 {
		return fmt.Errorf("window: SLIDE must be positive, got %d", s.Slide)
	}
	return nil
}

// String renders the clause.
func (s Spec) String() string {
	return fmt.Sprintf("WITHIN %d SLIDE %d", s.Within, s.Slide)
}

// Bounds returns the half-open interval [start, end) of window wid.
func (s Spec) Bounds(wid int64) (start, end int64) {
	return wid * s.Slide, wid*s.Slide + s.Within
}

// WindowsOf returns the inclusive range [first, last] of window
// identifiers containing time t: all wid >= 0 with
// wid*Slide <= t < wid*Slide+Within. first > last means no window
// (cannot happen for t >= 0).
func (s Spec) WindowsOf(t int64) (first, last int64) {
	last = floorDiv(t, s.Slide)
	first = floorDiv(t-s.Within, s.Slide) + 1
	if first < 0 {
		first = 0
	}
	return first, last
}

// MaxConcurrent returns the maximum number of windows any time point
// belongs to: ceil(Within/Slide).
func (s Spec) MaxConcurrent() int64 {
	return (s.Within + s.Slide - 1) / s.Slide
}

// ClosedBefore returns the largest wid whose window has fully closed
// at watermark time t (exclusive: every event with time < t has been
// seen), i.e. the largest wid with wid*Slide+Within <= t. Returns -1
// if no window has closed.
func (s Spec) ClosedBefore(t int64) int64 {
	return floorDiv(t-s.Within, s.Slide)
}

// FirstFullWindow returns the smallest wid whose window is fully
// covered by an observer that joins the stream at watermark t: the
// stream may already have emitted events up to and including time t,
// so a window is fully covered only if its start lies strictly after
// t. This defines the partial-first-window semantics of mid-stream
// subscription — a late joiner reports results starting from this
// window; earlier (partially observed) windows are suppressed.
func (s Spec) FirstFullWindow(t int64) int64 {
	wid := floorDiv(t, s.Slide) + 1
	if wid < 0 {
		wid = 0
	}
	return wid
}

// EpochOf returns the index of the Within-length time frame containing
// t. Epochs are the granularity of state-reclamation schemes tied to
// window expiry (the engine's binding-intern rotation): a window spans
// at most Within, so every window containing a time in epoch e has
// closed once the watermark reaches epoch e+2.
func (s Spec) EpochOf(t int64) int64 {
	return floorDiv(t, s.Within)
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Manager tracks per-window state of type T keyed by window id,
// creating states lazily and emitting them in wid order as the
// watermark passes their close time. It is the scaffold every
// aggregator (COGRA and baselines) hangs its per-window instances on.
type Manager[T any] struct {
	spec       Spec
	newState   func(wid int64) T
	active     map[int64]T
	emitted    int64 // all wids < emitted have been closed and emitted
	maxWid     int64
	everSawWid bool
	// ceil (when hasCeil) caps window creation: wids >= ceil are never
	// created, so the manager drains — once the watermark closes every
	// window below the ceiling it owns nothing. A retiring engine (its
	// sharing group hands ownership of wids >= ceil to the other
	// execution mode) keeps processing events for its remaining windows
	// and is torn down when Drained reports true.
	ceil    int64
	hasCeil bool
}

// NewManager builds a manager; newState creates the state for a window
// the first time an event lands in it.
func NewManager[T any](spec Spec, newState func(wid int64) T) *Manager[T] {
	return &Manager[T]{spec: spec, newState: newState, active: map[int64]T{}}
}

// Spec returns the window specification.
func (m *Manager[T]) Spec() Spec { return m.spec }

// StatesFor returns the states of every window containing time t,
// creating missing ones. The returned slice is ordered by wid.
func (m *Manager[T]) StatesFor(t int64) []T {
	return m.AppendStatesFor(nil, t)
}

// AppendStatesFor is StatesFor appending into dst, so per-event
// callers can reuse one scratch slice instead of allocating per event.
func (m *Manager[T]) AppendStatesFor(dst []T, t int64) []T {
	first, last := m.spec.WindowsOf(t)
	if first < m.emitted {
		first = m.emitted // late windows already emitted are dropped
	}
	if m.hasCeil && last >= m.ceil {
		last = m.ceil - 1 // windows at/above the ceiling belong elsewhere
	}
	for wid := first; wid <= last; wid++ {
		st, ok := m.active[wid]
		if !ok {
			st = m.newState(wid)
			m.active[wid] = st
		}
		if !m.everSawWid || wid > m.maxWid {
			m.maxWid = wid
			m.everSawWid = true
		}
		dst = append(dst, st)
	}
	return dst
}

// SkipBefore suppresses every window with wid < floor: they are
// neither created nor emitted, as if already closed. A late-joining
// query aligns its manager to the stream with
// SkipBefore(Spec().FirstFullWindow(t)), so windows it could only have
// observed partially never report. The floor only moves forward;
// windows already emitted stay emitted.
func (m *Manager[T]) SkipBefore(floor int64) {
	if floor <= m.emitted {
		return
	}
	m.emitted = floor
	for wid := range m.active {
		if wid < floor {
			delete(m.active, wid)
		}
	}
}

// SkipFrom suppresses every window with wid >= ceil: they are never
// created, so the manager owns exactly the windows below the ceiling
// and drains as the watermark closes them. The mirror image of
// SkipBefore — a sharing-group flip at window boundary W* retires the
// outgoing execution side with SkipFrom(W*) while the incoming side
// aligns with SkipBefore(W*), so every window is owned by exactly one
// side and results stay byte-identical across the flip. The ceiling
// only moves downward; states at/above it are dropped.
func (m *Manager[T]) SkipFrom(ceil int64) {
	if m.hasCeil && m.ceil <= ceil {
		return
	}
	m.ceil, m.hasCeil = ceil, true
	for wid := range m.active {
		if wid >= ceil {
			delete(m.active, wid)
		}
	}
}

// ClearCeiling lifts a SkipFrom ceiling: the manager owns windows
// again from the current emission cursor on. A revived engine pairs
// this with SkipBefore(W*) so ownership resumes exactly at the flip
// boundary.
func (m *Manager[T]) ClearCeiling() {
	m.ceil, m.hasCeil = 0, false
}

// Ceiling returns the SkipFrom ceiling, if set.
func (m *Manager[T]) Ceiling() (int64, bool) { return m.ceil, m.hasCeil }

// Drained reports whether a ceiling is set and every window below it
// has closed: the manager owns nothing anymore and never will until
// the ceiling is lifted.
func (m *Manager[T]) Drained() bool {
	return m.hasCeil && m.emitted >= m.ceil && len(m.active) == 0
}

// Closed emits (wid, state) pairs for every window that closed at
// watermark t, in wid order, and forgets them. Windows that never
// received an event are skipped.
type Closed[T any] struct {
	Wid   int64
	State T
}

// AdvanceTo closes windows given a watermark: all events with time < t
// have been observed.
func (m *Manager[T]) AdvanceTo(t int64) []Closed[T] {
	limit := m.spec.ClosedBefore(t)
	if limit < m.emitted {
		return nil
	}
	var out []Closed[T]
	wids := make([]int64, 0, len(m.active))
	for wid := range m.active {
		if wid <= limit {
			wids = append(wids, wid)
		}
	}
	sort.Slice(wids, func(i, j int) bool { return wids[i] < wids[j] })
	for _, wid := range wids {
		out = append(out, Closed[T]{Wid: wid, State: m.active[wid]})
		delete(m.active, wid)
	}
	m.emitted = limit + 1
	return out
}

// Flush closes every remaining window (end of stream), in wid order.
func (m *Manager[T]) Flush() []Closed[T] {
	wids := make([]int64, 0, len(m.active))
	for wid := range m.active {
		wids = append(wids, wid)
	}
	sort.Slice(wids, func(i, j int) bool { return wids[i] < wids[j] })
	out := make([]Closed[T], 0, len(wids))
	for _, wid := range wids {
		out = append(out, Closed[T]{Wid: wid, State: m.active[wid]})
		delete(m.active, wid)
	}
	if m.everSawWid && m.maxWid >= m.emitted {
		m.emitted = m.maxWid + 1
	}
	return out
}

// ActiveCount returns the number of live window states (for memory
// accounting).
func (m *Manager[T]) ActiveCount() int { return len(m.active) }
