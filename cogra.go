// Package cogra is the public API of the COGRA reproduction:
// Coarse-Grained Event Trend Aggregation under rich event matching
// semantics (Poppe, Lei, Rundensteiner, Maier — SIGMOD 2019).
//
// COGRA evaluates event trend aggregation queries — Kleene patterns
// with COUNT/MIN/MAX/SUM/AVG aggregates, predicates, grouping and
// sliding windows — online, without constructing the matched trends,
// at the coarsest aggregate granularity each event matching semantics
// permits: per pattern for skip-till-next-match and contiguous, per
// event type for skip-till-any-match, and mixed when predicates on
// adjacent events force some events to be kept.
//
// Quickstart — a Session hosts any number of queries over one live
// stream, and the query population may change while the stream runs:
//
//	q := cogra.MustParse(`
//	    RETURN COUNT(*)
//	    PATTERN (SEQ(A+, B))+
//	    SEMANTICS skip-till-any-match
//	    WITHIN 10 minutes SLIDE 10 minutes`)
//	sess := cogra.NewSession()            // cogra.WithWorkers(4) to parallelise
//	sub, err := sess.Subscribe(q)         // subscribe any time, even mid-stream
//	if err := sess.PushBatch(events); err != nil { ... }
//	sess.Close()
//	for r := range sub.Results() {
//	    fmt.Println(r)
//	}
//
// Ingest is batch-first (Push/PushBatch; WithSlack accepts bounded
// disorder), egress is pull (Subscription.Results) or push (WithSink),
// and lifecycle errors wrap typed sentinels (ErrClosed, ErrLateEvent,
// ErrNotHosted, ErrFrozenRouting) matchable with errors.Is.
// Subscription.Unsubscribe detaches one query mid-stream and flushes
// its windows; a query subscribed mid-stream reports results from the
// first window it could observe completely (see Session).
package cogra

import (
	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/pattern"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/stream"
)

// Event is a typed, time-stamped message on the input stream.
type Event = event.Event

// Schema describes one event type's attributes.
type Schema = event.Schema

// NewEvent constructs an event of the given type and time; attach
// attributes with WithNum and WithSym.
func NewEvent(eventType string, time int64) *Event { return event.New(eventType, time) }

// NewSchema builds a schema; prefix numeric attribute names with '#'.
func NewSchema(eventType string, attrs ...string) *Schema {
	return event.NewSchema(eventType, attrs...)
}

// Query is a parsed or built event trend aggregation query
// (Definition 6 of the paper).
type Query = query.Query

// Builder constructs queries programmatically, clause by clause.
type Builder = query.Builder

// GroupKey is one GROUP-BY item.
type GroupKey = query.GroupKey

// Semantics selects the event matching semantics.
type Semantics = query.Semantics

// The three event matching semantics (§2.2).
const (
	// SkipTillAnyMatch detects all possible trends; relevant events
	// may extend a trend or be skipped.
	SkipTillAnyMatch = query.Any
	// SkipTillNextMatch requires all relevant events to be matched
	// and skips only irrelevant ones.
	SkipTillNextMatch = query.Next
	// Contiguous forbids any unmatched event between adjacent trend
	// events.
	Contiguous = query.Cont
)

// Parse parses a query in the paper's SASE-style syntax.
func Parse(src string) (*Query, error) { return query.Parse(src) }

// MustParse is Parse that panics on error.
func MustParse(src string) *Query { return query.MustParse(src) }

// NewQuery starts a programmatic query builder over a pattern.
func NewQuery(p Pattern) *Builder { return query.NewBuilder(p) }

// Pattern is a Kleene pattern AST node.
type Pattern = pattern.Node

// Pattern constructors (Definition 1 plus the §8 extensions).
var (
	// Type matches one event type (alias defaults to the type name).
	Type = pattern.Type
	// TypeAs matches an event type under an explicit alias, e.g.
	// TypeAs("Stock", "A").
	TypeAs = pattern.TypeAs
	// Seq is the event sequence operator SEQ(P1, ..., Pk).
	Seq = pattern.Seq
	// Plus is the Kleene plus operator P+.
	Plus = pattern.Plus
	// Star is the Kleene star operator P* (§8).
	Star = pattern.Star
	// Opt is the optional operator P? (§8).
	Opt = pattern.Opt
	// OrPattern is the disjunction operator (§8).
	OrPattern = pattern.Or
	// NotPattern marks a negated sub-pattern inside SEQ (§8).
	NotPattern = pattern.Not
)

// Aggregation spec constructors for Builder.Return.
func CountStar() agg.Spec { return agg.Spec{Func: agg.CountStar} }

// CountType counts occurrences of one event type across trends.
func CountType(alias string) agg.Spec { return agg.Spec{Func: agg.CountType, Alias: alias} }

// Min aggregates the minimum of an attribute over trends.
func Min(alias, attr string) agg.Spec { return agg.Spec{Func: agg.Min, Alias: alias, Attr: attr} }

// Max aggregates the maximum of an attribute over trends.
func Max(alias, attr string) agg.Spec { return agg.Spec{Func: agg.Max, Alias: alias, Attr: attr} }

// Sum aggregates the sum of an attribute over trends.
func Sum(alias, attr string) agg.Spec { return agg.Spec{Func: agg.Sum, Alias: alias, Attr: attr} }

// Avg aggregates the average of an attribute over trends.
func Avg(alias, attr string) agg.Spec { return agg.Spec{Func: agg.Avg, Alias: alias, Attr: attr} }

// Predicate constructors for the Builder (the parser produces these
// from WHERE clauses).
type (
	// LocalPredicate restricts single events: Alias.Attr ◦ Value.
	LocalPredicate = predicate.Local
	// EquivalencePredicate is [attr] / [A.attr].
	EquivalencePredicate = predicate.Equivalence
	// AdjacentPredicate relates adjacent trend events, e.g.
	// M.rate < NEXT(M).rate.
	AdjacentPredicate = predicate.Adjacent
)

// Comparison operators for predicates.
const (
	Lt = predicate.Lt
	Le = predicate.Le
	Gt = predicate.Gt
	Ge = predicate.Ge
	Eq = predicate.Eq
	Ne = predicate.Ne
)

// Plan is a compiled query: the pattern FSA, the classified
// predicates and the selected aggregation granularity (Table 4).
type Plan = core.Plan

// Granularity identifies the selected aggregate granularity.
type Granularity = core.Granularity

// Granularities, coarse to fine.
const (
	PatternGrained = core.PatternGrained
	TypeGrained    = core.TypeGrained
	MixedGrained   = core.MixedGrained
)

// Compile runs the static query analyzer (§3).
func Compile(q *Query) (*Plan, error) { return core.NewPlan(q) }

// MustCompile is Compile that panics on error.
func MustCompile(q *Query) *Plan { return core.MustPlan(q) }

// Engine executes one plan over an in-order event stream. It is the
// single-query execution primitive under Session; prefer Session for
// new code (one query is just a fleet of size one).
type Engine = core.Engine

// Result is one aggregation output (window × group).
type Result = core.Result

// EngineOption configures an engine.
type EngineOption = core.Option

// Accountant tracks logical peak memory.
type Accountant = metrics.Accountant

// NewEngine builds an engine for a compiled plan.
func NewEngine(p *Plan, opts ...EngineOption) *Engine { return core.NewEngine(p, opts...) }

// WithAccountant wires logical memory accounting into an engine.
func WithAccountant(a *Accountant) EngineOption { return core.WithAccountant(a) }

// WithResultCallback streams results to fn instead of collecting them.
func WithResultCallback(fn func(Result)) EngineOption { return core.WithResultCallback(fn) }

// Iterator yields events in stream order.
type Iterator = stream.Iterator

// FromSlice wraps a pre-sorted event slice as an Iterator.
func FromSlice(events []*Event) Iterator { return stream.FromSlice(events) }

// MergeStreams merges per-source ordered feeds into one ordered
// stream (§2.1: producers emit in order, the consumer needs a single
// ordered stream).
func MergeStreams(srcs ...Iterator) Iterator { return stream.Merge(srcs...) }

// ParallelExecutor runs one engine per stream partition on worker
// goroutines (§8, "Parallel Processing").
type ParallelExecutor = stream.ParallelExecutor

// NewParallelExecutor starts a partition-parallel execution with n
// workers.
//
// Deprecated: use NewSession(WithWorkers(n)) and Subscribe — the
// session hosts one query the same way and allows attaching more.
func NewParallelExecutor(p *Plan, n int) (*ParallelExecutor, error) {
	return stream.NewParallelExecutor(p, n)
}

// Catalog is the shared symbol table a set of plans is compiled
// against: plans compiled in one catalog agree on dense type and
// attribute ids, which lets a Runtime resolve each stream event once
// for all of them.
type Catalog = core.Catalog

// NewCatalog returns an empty catalog for multi-query compilation.
func NewCatalog() *Catalog { return core.NewCatalog() }

// CompileIn compiles a query against a shared catalog, for hosting
// alongside other plans in a Runtime or MultiExecutor. Compile all
// plans before processing events.
func CompileIn(cat *Catalog, q *Query) (*Plan, error) { return core.NewPlanIn(cat, q) }

// Runtime executes many queries over one event stream in a single
// pass: each event is resolved once into a shared attribute view, a
// per-event-type index dispatches it only to the queries whose
// patterns react to its type, and one watermark drives every hosted
// window manager. It is the inline execution core behind Session.
type Runtime = runtime.Runtime

// RuntimeSubscription is one query hosted directly by a Runtime (the
// Session API wraps it as Subscription).
type RuntimeSubscription = runtime.Subscription

// NewRuntime returns an empty multi-query runtime over a fresh
// catalog. Subscribe compiles queries directly into it.
//
// Deprecated: use NewSession — a Session is the same single-pass
// multi-query runtime plus dynamic subscribe/unsubscribe, per-
// subscription lifecycle and stats.
func NewRuntime() *Runtime { return runtime.New() }

// NewRuntimeOn returns an empty multi-query runtime over an existing
// catalog, for hosting plans compiled with CompileIn.
//
// Deprecated: use NewSession with SubscribePlan.
func NewRuntimeOn(cat *Catalog) *Runtime { return runtime.NewOn(cat) }

// MultiExecutor runs a set of queries partition-parallel: every worker
// hosts a shared multi-query runtime over all plans, and events are
// routed by the partition attributes the plans have in common. It is
// the parallel execution core behind Session (WithWorkers).
type MultiExecutor = stream.MultiExecutor

// NewMultiExecutor starts a partition-parallel multi-query execution
// with n workers. The plans must share one catalog (CompileIn).
//
// Deprecated: use NewSession(WithWorkers(n)) — the session keeps the
// same routing and adds dynamic membership over the live stream.
func NewMultiExecutor(plans []*Plan, n int) (*MultiExecutor, error) {
	return stream.NewMultiExecutor(plans, n)
}
