package cogra_test

// Tests for sink panic containment: a panic inside a user-supplied
// Sink or OnResult callback must fail that one subscription (Err wraps
// ErrSinkPanic) instead of crashing the goroutine that delivered the
// result — the stream and the rest of the fleet keep running. CI runs
// this under -race (parallel-mode drains deliver to sinks too).

import (
	"errors"
	"fmt"
	"testing"

	cogra "repro"
)

func TestSinkPanicFailsSubscriptionOnly(t *testing.T) {
	events := sessionTestStream(2000)
	for mode, opts := range sessionModes() {
		t.Run(mode, func(t *testing.T) {
			sess := cogra.NewSession(opts...)
			var delivered int
			panicky, err := sess.Subscribe(cogra.MustParse(sessionTestQueries()["type"]),
				cogra.WithSink(cogra.SinkFunc(func(cogra.Result) {
					delivered++
					panic("sink exploded")
				})))
			if err != nil {
				t.Fatal(err)
			}
			standing, err := sess.Subscribe(cogra.MustParse(sessionTestQueries()["mixed"]))
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.PushBatch(events); err != nil {
				t.Fatal(err)
			}
			// Parallel sessions deliver to sinks at gather points, not
			// inside Push; force one so the panic has fired in both modes.
			panicky.Drain()
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
			if !errors.Is(panicky.Err(), cogra.ErrSinkPanic) {
				t.Fatalf("panicking sink: Err() = %v, want ErrSinkPanic", panicky.Err())
			}
			if delivered != 1 {
				t.Errorf("sink called %d times after panicking, want exactly 1", delivered)
			}
			got := standing.Drain()
			want := soloRun(t, sessionTestQueries()["mixed"], events)
			if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Errorf("healthy subscription disturbed by a sibling's sink panic\ngot:  %v\nwant: %v", got, want)
			}
			if len(want) == 0 {
				t.Error("no results; test is vacuous")
			}
		})
	}
}
