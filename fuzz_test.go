package cogra_test

// FuzzSnapshotDecode: Restore over arbitrary bytes must either succeed
// or fail with a typed error (ErrBadSnapshot, or ErrFrozenRouting for
// a worker-count conflict) — never panic, hang, or over-allocate. The
// committed seed corpus in testdata/fuzz/FuzzSnapshotDecode covers a
// valid snapshot plus truncated, bit-flipped, version-skewed and
// oversized-length mutants (regenerate with scripts/gen_fuzz_corpus.go).

import (
	"bytes"
	"errors"
	"testing"

	cogra "repro"
)

// fuzzSeedSnapshot builds a small but representative valid snapshot:
// two granularities subscribed, one unsubscribed (tombstoned catalog
// ids), slack buffer holding events, and a mid-stream cut.
func fuzzSeedSnapshot(tb testing.TB) []byte {
	events := sessionTestStream(400)
	shuffled, slack := shuffleBounded(events, 6, 7)
	sess := cogra.NewSession(cogra.WithSlack(slack), cogra.WithInternEviction())
	if _, err := sess.Subscribe(cogra.MustParse(sessionTestQueries()["type"])); err != nil {
		tb.Fatal(err)
	}
	if _, err := sess.Subscribe(cogra.MustParse(sessionTestQueries()["pattern"])); err != nil {
		tb.Fatal(err)
	}
	extra, err := sess.Subscribe(cogra.MustParse(sessionTestQueries()["mixed"]))
	if err != nil {
		tb.Fatal(err)
	}
	if err := sess.PushBatch(shuffled[:300]); err != nil {
		tb.Fatal(err)
	}
	extra.Unsubscribe()
	var buf bytes.Buffer
	if err := sess.Snapshot(&buf); err != nil {
		tb.Fatal(err)
	}
	sess.Close()
	return buf.Bytes()
}

func FuzzSnapshotDecode(f *testing.F) {
	valid := fuzzSeedSnapshot(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-payload
	f.Add(valid[:11])           // truncated inside the header
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40 // bit flip (fails the CRC, or a range check)
	f.Add(flipped)
	skewed := append([]byte(nil), valid...)
	skewed[8] = 0xff // version word
	f.Add(skewed)
	oversized := append([]byte(nil), valid...)
	for i := 12; i < 20; i++ {
		oversized[i] = 0xff // declared payload length far beyond the data
	}
	f.Add(oversized)
	f.Add([]byte{})
	f.Add([]byte("COGRASNP"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sess, err := cogra.Restore(bytes.NewReader(data))
		if err == nil {
			// Decoded (the valid seed, or an equivalent mutation): the
			// session must be live and closable.
			if cerr := sess.Close(); cerr != nil {
				t.Fatalf("restored session failed to close: %v", cerr)
			}
			return
		}
		if !errors.Is(err, cogra.ErrBadSnapshot) && !errors.Is(err, cogra.ErrFrozenRouting) {
			t.Fatalf("Restore returned an untyped error: %v", err)
		}
	})
}
