package cogra_test

// Differential tests for shared trend aggregation (the fingerprint
// registry in internal/core + the share/unshare runtime in
// internal/runtime), extending the repo's differential spine:
//
//   - a fleet of sharing-equivalent queries (same PATTERN, SEMANTICS,
//     WHERE, GROUP-BY and WITHIN — only RETURN differs) produces
//     byte-identical results with WithSharedAggregation on and off,
//     across all three granularities × {inline, 4 workers} ×
//     {intern eviction, snapshot-mid-stream, churn that retires the
//     sharing group's last member};
//   - the stream's phase structure (dense burst → sparse idle → dense
//     burst) drives the burstiness monitor through genuine share AND
//     unshare decisions, so the differential covers both flip
//     directions, not just the steady shared state;
//   - a snapshot cut lands while sharing groups are live: the restored
//     session rebuilds them (stats continuous across the cut) and the
//     tail results equal the undisturbed run;
//   - the sharing group retires with its last subscriber — after churn
//     removes every member, Stats().SharedGroups is 0.
//
// Runs under -race in CI like the rest of the spine.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	cogra "repro"
	"repro/internal/fuzz/diff"
)

// sharedFleetQueries returns, per granularity, three RETURN-variants
// of one sharing-equivalent query body. Every variant compiles to the
// same sharing fingerprint, so a shared session folds each trio into
// one group hosting the union of their aggregation specs.
func sharedFleetQueries() map[string][]string {
	bodies := map[string]string{
		"type": `
			PATTERN (SEQ(A+, B))+
			SEMANTICS skip-till-any-match
			WHERE [patient] GROUP-BY patient
			WITHIN 64 SLIDE 32`,
		"mixed": `
			PATTERN M+
			SEMANTICS skip-till-any-match
			WHERE [patient] AND M.rate < NEXT(M).rate
			GROUP-BY patient
			WITHIN 64 SLIDE 64`,
		"pattern": `
			PATTERN M+
			SEMANTICS skip-till-next-match
			WHERE [patient] AND M.rate <= NEXT(M).rate
			GROUP-BY patient
			WITHIN 96 SLIDE 48`,
	}
	returns := map[string][]string{
		"type":    {"COUNT(*), SUM(A.v)", "COUNT(*)", "AVG(A.v), COUNT(B)"},
		"mixed":   {"COUNT(*), MAX(M.rate)", "COUNT(*)", "MIN(M.rate), AVG(M.rate)"},
		"pattern": {"COUNT(*)", "COUNT(M)", "SUM(M.rate)"},
	}
	out := map[string][]string{}
	for g, body := range bodies {
		for _, ret := range returns[g] {
			out[g] = append(out[g], "RETURN "+ret+"\n"+body)
		}
	}
	return out
}

// sharedPhaseStream emits the session test mix (A/B sequences, M
// random walks, X noise, all keyed by patient) with a three-phase
// tempo: a dense burst (time crawls, heavy ties), a sparse idle
// stretch (time jumps per event), then a second dense burst. The
// dense phases push per-epoch event volume far above the share-up
// threshold for a 3-member fleet; the sparse phase drops it below the
// share-down threshold — so a shared session provably takes both
// share and unshare decisions along this stream.
func sharedPhaseStream(n int) []*cogra.Event {
	rng := rand.New(rand.NewSource(23))
	rates := [3]float64{60, 70, 80}
	out := make([]*cogra.Event, 0, n)
	tm := int64(0)
	for i := 0; i < n; i++ {
		p := rng.Intn(3)
		patient := fmt.Sprintf("p%d", p)
		ward := fmt.Sprintf("w%d", rng.Intn(2))
		var ev *cogra.Event
		switch x := rng.Intn(10); {
		case x < 3:
			ev = cogra.NewEvent("A", tm).WithSym("patient", patient).
				WithSym("ward", ward).WithNum("v", float64(rng.Intn(100)))
		case x < 5:
			ev = cogra.NewEvent("B", tm).WithSym("patient", patient).
				WithSym("ward", ward).WithNum("v", float64(rng.Intn(100)))
		case x < 8:
			rates[p] += float64(rng.Intn(7)) - 3
			ev = cogra.NewEvent("M", tm).WithSym("patient", patient).
				WithSym("ward", ward).WithNum("rate", rates[p])
		default:
			ev = cogra.NewEvent("X", tm).WithSym("patient", patient).
				WithSym("ward", ward).WithNum("noise", 1)
		}
		ev.ID = int64(i + 1)
		out = append(out, ev)
		sparse := 3*n/8 <= i && i < 5*n/8
		switch {
		case sparse:
			tm += 16 + int64(rng.Intn(16)) // idle: a few events per epoch
		case rng.Intn(8) < 5:
			// dense tie run
		case rng.Intn(8) == 0:
			tm += 4 + int64(rng.Intn(8)) // short hop, stays inside the window
		default:
			tm++
		}
	}
	return out
}

// sharedDiffRun drives one scenario: the fleet plus an unrelated
// control query subscribe up front, the stream flows in batches, and
// the variant schedule applies — cutAt >= 0 snapshots/discards/
// restores mid-stream, churn staggers the fleet members out until the
// sharing group's last member leaves. Returns per-query results
// (fleet order, control last), the stats probed at the end of the
// first dense phase, and the final stats.
func sharedDiffRun(t *testing.T, opts []cogra.SessionOption, fleet []string, events []*cogra.Event, cutAt int, churn bool) ([][]cogra.Result, cogra.SessionStats, cogra.SessionStats) {
	t.Helper()
	n := len(fleet)
	sess := cogra.NewSession(opts...)
	subs := make([]*cogra.Subscription, n+1)
	results := make([][]cogra.Result, n+1)
	var err error
	for i, src := range fleet {
		if subs[i], err = sess.Subscribe(cogra.MustParse(src)); err != nil {
			t.Fatal(err)
		}
	}
	if subs[n], err = sess.Subscribe(cogra.MustParse(sessionTestQueries()["contiguous"])); err != nil {
		t.Fatal(err)
	}
	ids := make([]int, n+1)
	for i, sub := range subs {
		ids[i] = sub.ID()
	}
	leaveAt := map[int][]int{}
	if churn {
		// Stagger the whole fleet out: the group shrinks member by
		// member and must retire when the last one leaves.
		leaveAt[2048], leaveAt[2304], leaveAt[2560] = []int{1}, []int{2}, []int{0}
	}
	var mid cogra.SessionStats
	probeAt := len(events) * 3 / 8 // end of the first dense phase
	for i := 0; i < len(events); {
		end := min(i+256, len(events))
		for _, p := range []int{cutAt, probeAt} {
			if p > i && p < end {
				end = p
			}
		}
		if err := sess.PushBatch(events[i:end]); err != nil {
			t.Fatal(err)
		}
		i = end
		if i == probeAt {
			if mid, err = sess.Stats(); err != nil {
				t.Fatal(err)
			}
		}
		for _, fi := range leaveAt[i] {
			results[fi] = subs[fi].Unsubscribe()
			if err := subs[fi].Err(); err != nil {
				t.Fatal(err)
			}
			subs[fi] = nil
		}
		if i == cutAt {
			var buf bytes.Buffer
			if err := sess.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			before, err := sess.Stats()
			if err != nil {
				t.Fatal(err)
			}
			sess.Close() // the original "crashes"; discard its tail
			if sess, err = cogra.Restore(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			after, err := sess.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%+v", after) != fmt.Sprintf("%+v", before) {
				t.Fatalf("stats not continuous across restore\nbefore: %+v\nafter:  %+v", before, after)
			}
			all := sess.Subscriptions()
			for qi, id := range ids {
				if id >= len(all) || !all[id].Active() {
					t.Fatalf("restored session lost subscription %d", qi)
				}
				subs[qi] = all[id]
			}
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for i, sub := range subs {
		if sub != nil {
			results[i] = sub.Drain()
		}
	}
	return results, mid, final
}

// TestSharedAggregationDifferential pins the tentpole invariant:
// WithSharedAggregation never changes results — only who computes
// them. Every (granularity × session mode × lifecycle variant) cell
// compares the shared run against the unshared run query by query,
// and checks the shared run actually shared (the differential is not
// vacuous) via the sharing counters.
func TestSharedAggregationDifferential(t *testing.T) {
	events := sharedPhaseStream(3000)
	variants := map[string]struct {
		opts  []cogra.SessionOption
		cutAt int
		churn bool
	}{
		"evict":    {[]cogra.SessionOption{cogra.WithInternEviction()}, -1, false},
		"snapshot": {nil, 1873, false}, // cut inside the second dense phase: groups are live
		"churn":    {nil, -1, true},
	}
	for mode, mopts := range sessionModes() {
		for vname, v := range variants {
			for gname, fleet := range sharedFleetQueries() {
				t.Run(mode+"/"+vname+"/"+gname, func(t *testing.T) {
					base := append(mopts[:len(mopts):len(mopts)], v.opts...)
					want, _, _ := sharedDiffRun(t, base, fleet, events, v.cutAt, v.churn)
					shared := append(base[:len(base):len(base)], cogra.WithSharedAggregation())
					got, mid, final := sharedDiffRun(t, shared, fleet, events, v.cutAt, v.churn)
					for qi := range want {
						if len(want[qi]) == 0 {
							t.Errorf("query %d: no results; differential test is vacuous", qi)
						}
						if !diff.Equal(got[qi], want[qi]) {
							t.Errorf("query %d: shared run diverges from unshared\n%s", qi, diff.Diff(got[qi], want[qi]))
						}
					}
					if mid.SharedGroups < 1 {
						t.Errorf("sharing never engaged by the dense-phase probe: %+v", mid)
					}
					if final.ShareFlips < 1 || final.SharedSavedOps < 1 {
						t.Errorf("sharing counters vacuous at close: flips=%d saved=%d", final.ShareFlips, final.SharedSavedOps)
					}
					if v.churn && final.SharedGroups != 0 {
						t.Errorf("sharing group outlives its last member: %d groups at close", final.SharedGroups)
					}
				})
			}
		}
	}
}
