// Benchmarks regenerating the performance profile of each experiment
// in §9 as testing.B micro-benchmarks: one benchmark (family) per
// figure and table of the paper. The full multi-approach sweeps with
// DNF handling live in cmd/cograbench; these benches give
// allocation-accurate per-approach numbers at one representative
// sweep point each.
package cogra_test

import (
	"fmt"
	"testing"

	cogra "repro"
	"repro/internal/baselines"
	"repro/internal/baselines/aseq"
	"repro/internal/baselines/greta"
	"repro/internal/baselines/sase"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/query"
)

// runCogra measures the COGRA engine over a prepared stream.
func runCogra(b *testing.B, plan *core.Plan, events []*event.Event) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cloned := make([]*event.Event, len(events))
		for j, e := range events {
			cloned[j] = e.Clone()
		}
		b.StartTimer()
		eng := core.NewEngine(plan)
		if err := eng.ProcessAll(cloned); err != nil {
			b.Fatal(err)
		}
		eng.Close()
	}
	b.SetBytes(int64(len(events)))
}

func runBaseline(b *testing.B, r baselines.Runner, events []*event.Event) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cloned := make([]*event.Event, len(events))
		for j, e := range events {
			c := e.Clone()
			c.ID = 0
			cloned[j] = c
		}
		b.StartTimer()
		if _, err := r.Run(cloned); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(events)))
}

// fig5Setup builds the q1-style contiguous query and stream.
func fig5Setup(n int) (*core.Plan, []*event.Event) {
	q := cogra.MustParse(fmt.Sprintf(`
		RETURN patient, COUNT(*), MAX(M.rate)
		PATTERN Measurement M+
		SEMANTICS contiguous
		WHERE [patient] AND M.rate < NEXT(M).rate
		GROUP-BY patient
		WITHIN %d SLIDE %d`, n, n))
	return cogra.MustCompile(q), gen.Activity(gen.ActivityConfig{Seed: 5, Events: n, RunLength: 6})
}

// BenchmarkFig5Contiguous reproduces Figure 5's workload (contiguous
// semantics, physical activity) for COGRA and the two-step SASE.
func BenchmarkFig5Contiguous(b *testing.B) {
	plan, events := fig5Setup(20000)
	b.Run("COGRA", func(b *testing.B) { runCogra(b, plan, events) })
	b.Run("SASE", func(b *testing.B) { runBaseline(b, sase.New(plan), events) })
}

// BenchmarkFig6NextMatch reproduces Figure 6's workload
// (skip-till-next-match, public transportation).
func BenchmarkFig6NextMatch(b *testing.B) {
	q := cogra.NewQuery(cogra.Plus(cogra.Seq(cogra.Plus(cogra.TypeAs("Board", "B")), cogra.TypeAs("Ride", "R")))).
		Return(cogra.CountStar()).
		Semantics(cogra.SkipTillNextMatch).
		WhereEquiv(cogra.EquivalencePredicate{Attr: "passenger"}).
		GroupBy(cogra.GroupKey{Attr: "passenger"}).
		Within(20000, 20000).
		MustBuild()
	plan := cogra.MustCompile(q)
	events := gen.Transit(gen.TransitConfig{Seed: 6, Events: 20000})
	b.Run("COGRA", func(b *testing.B) { runCogra(b, plan, events) })
	b.Run("SASE", func(b *testing.B) { runBaseline(b, sase.New(plan), events) })
}

// fig7Setup builds the q3-style ANY query without adjacent predicates.
func fig7Setup(n int) (*core.Plan, []*event.Event) {
	q := cogra.NewQuery(cogra.Seq(cogra.Plus(cogra.TypeAs("Stock", "A")), cogra.Plus(cogra.TypeAs("Stock", "B")))).
		Return(cogra.CountStar(), cogra.Avg("B", "price")).
		Semantics(cogra.SkipTillAnyMatch).
		WhereEquiv(cogra.EquivalencePredicate{Attr: "company"}).
		GroupBy(cogra.GroupKey{Attr: "company"}).
		Within(int64(n), int64(n)).
		MustBuild()
	return cogra.MustCompile(q), gen.Stock(gen.StockConfig{Seed: 7, Events: n})
}

// BenchmarkFig7AnyMatch reproduces Figure 7's workload at a size all
// online approaches survive; the two-step approaches are DNF here and
// appear only in cmd/cograbench.
func BenchmarkFig7AnyMatch(b *testing.B) {
	plan, events := fig7Setup(5000)
	b.Run("COGRA", func(b *testing.B) { runCogra(b, plan, events) })
	b.Run("GRETA", func(b *testing.B) { runBaseline(b, greta.New(plan), events) })
	b.Run("A-Seq", func(b *testing.B) {
		r := aseq.New(plan)
		r.MaxLen = 12
		runBaseline(b, r, events)
	})
}

// BenchmarkFig8HighRate reproduces Figure 8's workload at the high
// event rate only COGRA handles comfortably.
func BenchmarkFig8HighRate(b *testing.B) {
	plan, events := fig7Setup(100000)
	b.Run("COGRA", func(b *testing.B) { runCogra(b, plan, events) })
}

// BenchmarkFig9Selectivity reproduces Figure 9's workload: the
// mixed-grained aggregator under increasing predicate selectivity.
func BenchmarkFig9Selectivity(b *testing.B) {
	for _, sel := range []float64{0.1, 0.5, 0.9} {
		sel := sel
		pass := func(prev, next float64) bool {
			return gen.PairHash(prev, next) < sel
		}
		q := cogra.NewQuery(cogra.Seq(cogra.Plus(cogra.TypeAs("Stock", "A")), cogra.Plus(cogra.TypeAs("Stock", "B")))).
			Return(cogra.CountStar()).
			Semantics(cogra.SkipTillAnyMatch).
			WhereEquiv(cogra.EquivalencePredicate{Attr: "company"}).
			WhereAdjacent(cogra.AdjacentPredicate{Left: "A", LeftAttr: "u", Right: "A", RightAttr: "u", NumFn: pass}).
			WhereAdjacent(cogra.AdjacentPredicate{Left: "A", LeftAttr: "u", Right: "B", RightAttr: "u", NumFn: pass}).
			GroupBy(cogra.GroupKey{Attr: "company"}).
			Within(5000, 5000).
			MustBuild()
		plan := cogra.MustCompile(q)
		if plan.Granularity != core.MixedGrained {
			b.Fatalf("expected mixed granularity")
		}
		events := gen.Stock(gen.StockConfig{Seed: 9, Events: 5000})
		b.Run(fmt.Sprintf("COGRA-sel%.0f%%", sel*100), func(b *testing.B) { runCogra(b, plan, events) })
	}
}

// BenchmarkFig10Grouping reproduces Figure 10's workload: latency vs
// the number of trend groups.
func BenchmarkFig10Grouping(b *testing.B) {
	for _, groups := range []int{5, 30} {
		q := cogra.NewQuery(cogra.Seq(cogra.Plus(cogra.TypeAs("Board", "B")), cogra.TypeAs("Ride", "R"))).
			Return(cogra.CountStar()).
			Semantics(cogra.SkipTillAnyMatch).
			WhereEquiv(cogra.EquivalencePredicate{Attr: "passenger"}).
			GroupBy(cogra.GroupKey{Attr: "passenger"}).
			Within(5000, 5000).
			MustBuild()
		plan := cogra.MustCompile(q)
		events := gen.Transit(gen.TransitConfig{Seed: 10, Events: 5000, Passengers: groups})
		b.Run(fmt.Sprintf("COGRA-groups%d", groups), func(b *testing.B) { runCogra(b, plan, events) })
	}
}

// figure2Stream is the paper's worked-example stream.
func figure2Stream() []*event.Event {
	var out []*event.Event
	for _, s := range []struct {
		typ string
		t   int64
	}{{"A", 1}, {"B", 2}, {"A", 3}, {"A", 4}, {"C", 5}, {"B", 6}, {"A", 7}, {"B", 8}} {
		out = append(out, event.New(s.typ, s.t).WithNum("t", float64(s.t)))
	}
	return out
}

func figure2Plan(sem query.Semantics) *core.Plan {
	q := cogra.NewQuery(cogra.Plus(cogra.Seq(cogra.Plus(cogra.Type("A")), cogra.Type("B")))).
		Return(cogra.CountStar()).
		Semantics(sem).
		Within(100, 100).
		MustBuild()
	return cogra.MustCompile(q)
}

// BenchmarkTable5TypeGrained micro-benchmarks the type-grained
// aggregator on the Table 5 worked example.
func BenchmarkTable5TypeGrained(b *testing.B) {
	runCogra(b, figure2Plan(query.Any), figure2Stream())
}

// BenchmarkTable6MixedGrained micro-benchmarks the mixed-grained
// aggregator on the Table 6 worked example.
func BenchmarkTable6MixedGrained(b *testing.B) {
	q := cogra.NewQuery(cogra.Plus(cogra.Seq(cogra.Plus(cogra.Type("A")), cogra.Type("B")))).
		Return(cogra.CountStar()).
		Semantics(cogra.SkipTillAnyMatch).
		WhereAdjacent(cogra.AdjacentPredicate{
			Left: "B", LeftAttr: "t", Right: "A", RightAttr: "t",
			NumFn: func(prev, next float64) bool {
				return !(prev == 6 && next == 7)
			}}).
		Within(100, 100).
		MustBuild()
	runCogra(b, cogra.MustCompile(q), figure2Stream())
}

// BenchmarkTable7PatternGrained micro-benchmarks the pattern-grained
// aggregator on the Table 7 worked example (NEXT and CONT).
func BenchmarkTable7PatternGrained(b *testing.B) {
	b.Run("NEXT", func(b *testing.B) { runCogra(b, figure2Plan(query.Next), figure2Stream()) })
	b.Run("CONT", func(b *testing.B) { runCogra(b, figure2Plan(query.Cont), figure2Stream()) })
}

// BenchmarkTable3TrendEnumeration measures the two-step trend
// construction cost classes of Table 3 via the enumerator.
func BenchmarkTable3TrendEnumeration(b *testing.B) {
	mk := func(n int) []*event.Event {
		var out []*event.Event
		for i := 1; i <= n; i++ {
			out = append(out, event.New("A", int64(i)))
		}
		return out
	}
	for _, sem := range []query.Semantics{query.Any, query.Next} {
		sem := sem
		n := 14 // 2^14 trends under ANY, 105 under NEXT
		b.Run(sem.String(), func(b *testing.B) {
			q := cogra.NewQuery(cogra.Plus(cogra.Type("A"))).
				Return(cogra.CountStar()).
				Semantics(sem).Within(1000, 1000).MustBuild()
			plan := cogra.MustCompile(q)
			events := mk(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sase.EnumerateWindow(plan, events, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGranularity isolates the granularity design choice
// (§3.3): the same ANY query at type, mixed and event granularity.
func BenchmarkAblationGranularity(b *testing.B) {
	n := 5000
	typePlan, events := fig7Setup(n)
	mixedQ := cogra.NewQuery(cogra.Seq(cogra.Plus(cogra.TypeAs("Stock", "A")), cogra.Plus(cogra.TypeAs("Stock", "B")))).
		Return(cogra.CountStar(), cogra.Avg("B", "price")).
		Semantics(cogra.SkipTillAnyMatch).
		WhereEquiv(cogra.EquivalencePredicate{Attr: "company"}).
		WhereAdjacent(cogra.AdjacentPredicate{
			Left: "A", LeftAttr: "u", Right: "B", RightAttr: "u",
			NumFn: func(prev, next float64) bool { return true }}).
		GroupBy(cogra.GroupKey{Attr: "company"}).
		Within(int64(n), int64(n)).
		MustBuild()
	mixedPlan := cogra.MustCompile(mixedQ)
	b.Run("type", func(b *testing.B) { runCogra(b, typePlan, events) })
	b.Run("mixed", func(b *testing.B) { runCogra(b, mixedPlan, events) })
	b.Run("event", func(b *testing.B) { runBaseline(b, greta.New(typePlan), events) })
}

// BenchmarkParallelExecutor measures the §8 partition-parallel
// speed-up over worker counts.
func BenchmarkParallelExecutor(b *testing.B) {
	plan, events := fig5Setup(50000)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cloned := make([]*event.Event, len(events))
				for j, e := range events {
					cloned[j] = e.Clone()
				}
				b.StartTimer()
				exec, err := cogra.NewParallelExecutor(plan, workers)
				if err != nil {
					b.Fatal(err)
				}
				if err := exec.Run(cogra.FromSlice(cloned)); err != nil {
					b.Fatal(err)
				}
				if _, err := exec.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(events)))
		})
	}
}

// BenchmarkQueryCompilation measures the static analyzer itself.
func BenchmarkQueryCompilation(b *testing.B) {
	src := `
		RETURN sector, A.company, B.company, AVG(B.price)
		PATTERN SEQ(Stock A+, Stock B+)
		SEMANTICS skip-till-any-match
		WHERE [A.company] AND [B.company] AND A.price > NEXT(A).price
		GROUP-BY sector, A.company, B.company
		WITHIN 10 minutes SLIDE 10 seconds`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := cogra.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cogra.Compile(q); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchHarnessSmoke runs every §9 experiment at tiny scale to keep
// the harness itself under test.
func TestBenchHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is not short")
	}
	cfg := bench.DefaultConfig()
	cfg.Scale = 0.01
	cfg.TwoStepBudget = 2_000_000
	cfg.OnlineBudget = 20_000_000
	var sink discard
	if err := bench.RunAll(cfg, &sink); err != nil {
		t.Fatal(err)
	}
	if sink.n == 0 {
		t.Error("harness produced no output")
	}
}

type discard struct{ n int }

func (d *discard) Write(p []byte) (int, error) { d.n += len(p); return len(p), nil }
