package cogra_test

// Differential tests for checkpoint/restore: snapshotting a session at
// event k, restoring it, and pushing the remaining suffix must be
// byte-identical to the undisturbed run — results AND Stats counters —
// across all three granularities, inline and 4-worker sessions, and
// the slack, intern-eviction and catalog-compaction variants. This
// extends the repo's differential spine (solo run == session run ==
// parallel run) with: restore == undisturbed run.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	cogra "repro"
	"repro/internal/fuzz/diff"
)

// snapRun feeds events to a session hosting a standing query and the
// query under test, with optional churn (an extra query subscribed at
// the start and unsubscribed at event churnAt, forcing catalog
// compaction). At event snapAt (-1: never) it snapshots, restores, and
// continues on the restored session. Returns the target's drained
// results and the final stats rendering.
func snapRun(t *testing.T, opts []cogra.SessionOption, src string, events []*cogra.Event, snapAt, churnAt int) ([]cogra.Result, string, string) {
	t.Helper()
	sess := cogra.NewSession(opts...)
	if _, err := sess.Subscribe(cogra.MustParse(sessionTestQueries()["type"])); err != nil {
		t.Fatal(err)
	}
	target, err := sess.Subscribe(cogra.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	var extra *cogra.Subscription
	if churnAt >= 0 {
		if extra, err = sess.Subscribe(cogra.MustParse(sessionTestQueries()["mixed"])); err != nil {
			t.Fatal(err)
		}
	}
	var cutStats string
	targetID := target.ID()
	for i, e := range events {
		if extra != nil && i == churnAt {
			extra.Unsubscribe()
			if err := extra.Err(); err != nil {
				t.Fatal(err)
			}
			extra = nil
		}
		if i == snapAt {
			var buf bytes.Buffer
			if err := sess.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			before, err := sess.Stats()
			if err != nil {
				t.Fatal(err)
			}
			sess.Close() // the original "crashes"; discard its tail
			if sess, err = cogra.Restore(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			after, err := sess.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%+v", after) != fmt.Sprintf("%+v", before) {
				t.Fatalf("stats not continuous across restore\nbefore: %+v\nafter:  %+v", before, after)
			}
			cutStats = fmt.Sprintf("%+v", after)
			subs := sess.Subscriptions()
			if len(subs) <= targetID {
				t.Fatalf("restored session has %d subscriptions, want at least %d", len(subs), targetID+1)
			}
			target = subs[targetID]
			if !target.Active() {
				t.Fatal("restored target subscription inactive")
			}
		}
		if err := sess.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return target.Drain(), fmt.Sprintf("%+v", st), cutStats
}

func TestSessionSnapshotRestoreDifferential(t *testing.T) {
	base := sessionTestStream(2400)
	shuffled, slack := shuffleBounded(base, 6, 99)
	if slack == 0 {
		t.Fatal("shuffle produced no disorder; slack variant is vacuous")
	}
	variants := map[string]struct {
		opts    []cogra.SessionOption
		events  []*cogra.Event
		churnAt int
	}{
		"plain":      {nil, base, -1},
		"slack":      {[]cogra.SessionOption{cogra.WithSlack(slack)}, shuffled, -1},
		"eviction":   {[]cogra.SessionOption{cogra.WithInternEviction()}, base, -1},
		"compaction": {nil, base, len(base) / 4},
	}
	snapAt := len(base) / 2
	for mode, mopts := range sessionModes() {
		for vname, v := range variants {
			for qname, src := range sessionTestQueries() {
				t.Run(mode+"/"+vname+"/"+qname, func(t *testing.T) {
					opts := append(mopts[:len(mopts):len(mopts)], v.opts...)
					want, wantStats, _ := snapRun(t, opts, src, v.events, -1, v.churnAt)
					got, gotStats, _ := snapRun(t, opts, src, v.events, snapAt, v.churnAt)
					if !diff.Equal(got, want) {
						t.Errorf("restored run diverges from undisturbed run\n%s", diff.Diff(got, want))
					}
					if len(want) == 0 {
						t.Error("no results; differential test is vacuous")
					}
					if gotStats != wantStats {
						t.Errorf("final stats diverge\ngot:  %s\nwant: %s", gotStats, wantStats)
					}
				})
			}
		}
	}
}

// TestSessionSnapshotMidTimestamp pins the stream-transaction rule: a
// snapshot taken between two events of the SAME time stamp (staged,
// uncommitted aggregator state) restores and finishes identically.
func TestSessionSnapshotMidTimestamp(t *testing.T) {
	events := sessionTestStream(2000)
	// Find a cut strictly inside a dense (equal-time) run.
	snapAt := -1
	for i := 1; i < len(events); i++ {
		if events[i].Time == events[i-1].Time && i > len(events)/2 {
			snapAt = i
			break
		}
	}
	if snapAt < 0 {
		t.Fatal("stream has no dense run after the midpoint")
	}
	for mode, mopts := range sessionModes() {
		for qname, src := range sessionTestQueries() {
			t.Run(mode+"/"+qname, func(t *testing.T) {
				want, wantStats, _ := snapRun(t, mopts, src, events, -1, -1)
				got, gotStats, _ := snapRun(t, mopts, src, events, snapAt, -1)
				if !diff.Equal(got, want) {
					t.Errorf("mid-timestamp restore diverges\n%s", diff.Diff(got, want))
				}
				if gotStats != wantStats {
					t.Errorf("final stats diverge\ngot:  %s\nwant: %s", gotStats, wantStats)
				}
			})
		}
	}
}

// TestRestoreWorkerCount: changing the worker count at restore is
// allowed only while no event has been ingested; afterwards the
// routing (and the workers' partitioned state) is frozen and Restore
// fails with ErrFrozenRouting.
func TestRestoreWorkerCount(t *testing.T) {
	events := sessionTestStream(1200)

	t.Run("frozen after events", func(t *testing.T) {
		sess := cogra.NewSession(cogra.WithWorkers(4))
		if _, err := sess.Subscribe(cogra.MustParse(sessionTestQueries()["type"])); err != nil {
			t.Fatal(err)
		}
		if err := sess.PushBatch(events[:600]); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sess.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		sess.Close()
		if _, err := cogra.Restore(bytes.NewReader(buf.Bytes()), cogra.WithWorkers(2)); !errors.Is(err, cogra.ErrFrozenRouting) {
			t.Fatalf("restore with changed workers after events: err = %v, want ErrFrozenRouting", err)
		}
		// The unchanged worker count still restores.
		if _, err := cogra.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("restore with original workers: %v", err)
		}
	})

	t.Run("free before events", func(t *testing.T) {
		sess := cogra.NewSession()
		if _, err := sess.Subscribe(cogra.MustParse(sessionTestQueries()["type"])); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sess.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		sess.Close()
		restored, err := cogra.Restore(bytes.NewReader(buf.Bytes()), cogra.WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.PushBatch(events); err != nil {
			t.Fatal(err)
		}
		if err := restored.Close(); err != nil {
			t.Fatal(err)
		}
		got := restored.Subscriptions()[0].Drain()
		want := soloRun(t, sessionTestQueries()["type"], events)
		if !diff.Equal(got, want) {
			t.Errorf("event-free snapshot rescaled to 4 workers diverges from solo run\n%s", diff.Diff(got, want))
		}
		if len(want) == 0 {
			t.Error("no results; test is vacuous")
		}
	})
}

// TestRestoreThenSubscribe: a restored session keeps full dynamic
// membership — a query subscribed AFTER restore behaves exactly like
// one subscribed mid-stream in the undisturbed run.
func TestRestoreThenSubscribe(t *testing.T) {
	events := sessionTestStream(2400)
	k := len(events) / 2
	joinTime := events[k-1].Time
	src := sessionTestQueries()["mixed"]
	for mode, mopts := range sessionModes() {
		t.Run(mode, func(t *testing.T) {
			sess := cogra.NewSession(mopts...)
			if _, err := sess.Subscribe(cogra.MustParse(sessionTestQueries()["type"])); err != nil {
				t.Fatal(err)
			}
			if err := sess.PushBatch(events[:k]); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := sess.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			sess.Close()
			restored, err := cogra.Restore(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			late, err := restored.Subscribe(cogra.MustParse(src))
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.PushBatch(events[k:]); err != nil {
				t.Fatal(err)
			}
			if err := restored.Close(); err != nil {
				t.Fatal(err)
			}
			got := late.Drain()
			want := fullWindowsAfter(soloRun(t, src, events[k:]), joinTime)
			if !diff.Equal(got, want) {
				t.Errorf("post-restore subscriber diverges from suffix solo run\n%s", diff.Diff(got, want))
			}
			if len(want) == 0 {
				t.Error("no results; test is vacuous")
			}
		})
	}
}

// TestRestorePendingResults: results buffered but not yet drained at
// the cut survive the snapshot and come back from the restored
// subscription's Drain.
func TestRestorePendingResults(t *testing.T) {
	events := sessionTestStream(2400)
	for mode, mopts := range sessionModes() {
		t.Run(mode, func(t *testing.T) {
			src := sessionTestQueries()["type"]
			sess := cogra.NewSession(mopts...)
			sub, err := sess.Subscribe(cogra.MustParse(src))
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.PushBatch(events); err != nil {
				t.Fatal(err)
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
			want := sub.Drain() // the full run's results, none drained early

			sess2 := cogra.NewSession(mopts...)
			sub2, err := sess2.Subscribe(cogra.MustParse(src))
			if err != nil {
				t.Fatal(err)
			}
			if err := sess2.PushBatch(events[:len(events)/2]); err != nil {
				t.Fatal(err)
			}
			// Consume ONE available result and break: the rest moves into
			// the subscription's session-level pending buffer, which the
			// snapshot must carry (engine buffers alone would miss it).
			var early []cogra.Result
			for r := range sub2.Results() {
				early = append(early, r)
				break
			}
			if len(early) == 0 {
				t.Fatal("no results available at the cut; test is vacuous")
			}
			var buf bytes.Buffer
			if err := sess2.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			sess2.Close()
			restored, err := cogra.Restore(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.PushBatch(events[len(events)/2:]); err != nil {
				t.Fatal(err)
			}
			if err := restored.Close(); err != nil {
				t.Fatal(err)
			}
			got := append(early, restored.Subscriptions()[0].Drain()...)
			if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Errorf("pending results lost or reordered across restore\ngot:  %v\nwant: %v", got, want)
			}
			if len(want) == 0 {
				t.Error("no results; test is vacuous")
			}
		})
	}
}
