package cogra_test

// The permanent regression net behind testdata/repros/: every file in
// the directory is a shrunk scenario cografuzz once caught failing an
// oracle, committed after the underlying bug was fixed. Replaying them
// here pins each bug fixed forever — a regression flips the replay
// back to failing. New repros are added by copying the file cografuzz
// -out wrote (see README "Differential fuzzing").

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fuzz"
)

func TestFuzzRepros(t *testing.T) {
	dir := filepath.Join("testdata", "repros")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	ran := 0
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".repro" {
			continue
		}
		ran++
		t.Run(ent.Name(), func(t *testing.T) {
			rep, mismatch, err := fuzz.ReplayFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if mismatch != "" {
				t.Errorf("oracle %s fails again on %s — a fixed bug has regressed:\n%s",
					rep.Oracle, rep.Scenario, mismatch)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no .repro files under testdata/repros; the regression net is vacuous")
	}
}
