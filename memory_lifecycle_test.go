package cogra_test

// Tests for the bounded-state session: binding-intern epoch rotation
// (WithInternEviction), catalog id-space compaction at unsubscribe,
// the depth-capped reorder buffer (WithMaxReorderDepth with the
// ShedOldest/Reject policies and the ErrBackpressure sentinel), and
// the concurrency contract of Session.Stats.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	cogra "repro"
)

// lifecycleStream emits a rotating-cardinality multi-type stream:
// every 64-tick frame introduces fresh u/w slot values (suffix-stamped
// with the frame index) that are never seen again, so binding-intern
// tables ramp without eviction and plateau with it. All events carry
// patient, the shared partition attribute of the lifecycle queries.
func lifecycleStream(n int) []*cogra.Event {
	rng := rand.New(rand.NewSource(23))
	rates := [3]float64{60, 70, 80}
	out := make([]*cogra.Event, 0, n)
	tm := int64(0)
	for i := 0; i < n; i++ {
		p := rng.Intn(3)
		patient := fmt.Sprintf("p%d", p)
		u := fmt.Sprintf("u%d-%d", tm/64, rng.Intn(3))
		w := fmt.Sprintf("w%d-%d", tm/64, rng.Intn(2))
		var ev *cogra.Event
		switch x := rng.Intn(10); {
		case x < 3:
			ev = cogra.NewEvent("A", tm).WithSym("patient", patient).
				WithSym("u", u).WithSym("w", w).WithNum("v", float64(rng.Intn(100)))
		case x < 5:
			ev = cogra.NewEvent("B", tm).WithSym("patient", patient).
				WithSym("u", u).WithSym("w", w).WithNum("v", float64(rng.Intn(100)))
		case x < 8:
			rates[p] += float64(rng.Intn(7)) - 3
			ev = cogra.NewEvent("M", tm).WithSym("patient", patient).
				WithSym("u", u).WithNum("rate", rates[p])
		default:
			ev = cogra.NewEvent("X", tm).WithSym("patient", patient).WithNum("noise", 1)
		}
		ev.ID = int64(i + 1)
		out = append(out, ev)
		if rng.Intn(4) != 0 {
			tm++
		}
	}
	return out
}

// lifecycleQueries exercises the reclamation paths per granularity:
// alias-scoped slots drive value interning (type), value interning
// alongside stored events (mixed), vector interning (three slots), and
// the slot-less pattern granularity (eviction must be a no-op).
func lifecycleQueries() map[string]string {
	return map[string]string{
		"type-slots": `
			RETURN COUNT(*), SUM(A.v)
			PATTERN (SEQ(A+, B))+
			SEMANTICS skip-till-any-match
			WHERE [patient] AND [A.u]
			GROUP-BY patient
			WITHIN 64 SLIDE 32`,
		"mixed-slots": `
			RETURN COUNT(*), MAX(M.rate)
			PATTERN M+
			SEMANTICS skip-till-any-match
			WHERE [patient] AND [M.u] AND M.rate < NEXT(M).rate
			GROUP-BY patient
			WITHIN 64 SLIDE 64`,
		"wide-slots": `
			RETURN COUNT(*)
			PATTERN (SEQ(A+, B))+
			SEMANTICS skip-till-any-match
			WHERE [patient] AND [A.u] AND [A.w] AND [B.u]
			GROUP-BY patient
			WITHIN 64 SLIDE 32`,
		"pattern": `
			RETURN COUNT(*)
			PATTERN M+
			SEMANTICS skip-till-next-match
			WHERE [patient] AND M.rate <= NEXT(M).rate
			GROUP-BY patient
			WITHIN 96 SLIDE 48`,
	}
}

// TestSessionMemoryLifecycleDifferential is the acceptance check of
// the bounded-state session: a WithSlack + WithInternEviction +
// depth-capped session fed a shuffled rotating-cardinality stream is
// byte-identical to an unbounded in-order session, across all
// granularities and both session modes, while BindingInternBytes and
// ReorderDepth stay bounded.
func TestSessionMemoryLifecycleDifferential(t *testing.T) {
	events := lifecycleStream(4000)
	shuffled, slack := shuffleBounded(events, 6, 7)
	if slack == 0 {
		t.Fatal("shuffle produced no disorder; test is vacuous")
	}
	const maxDepth = 256 // far above the natural peak: no shedding, results stay identical
	for mode, opts := range sessionModes() {
		for name, src := range lifecycleQueries() {
			t.Run(mode+"/"+name, func(t *testing.T) {
				want := soloRun(t, src, events)

				sess := cogra.NewSession(append(opts[:len(opts):len(opts)],
					cogra.WithSlack(slack),
					cogra.WithMaxReorderDepth(maxDepth),
					cogra.WithInternEviction())...)
				sub, err := sess.Subscribe(cogra.MustParse(src))
				if err != nil {
					t.Fatal(err)
				}
				var peakIntern int64
				for i := 0; i < len(shuffled); i += 128 {
					end := min(i+128, len(shuffled))
					if err := sess.PushBatch(shuffled[i:end]); err != nil {
						t.Fatal(err)
					}
					st, err := sess.Stats()
					if err != nil {
						t.Fatal(err)
					}
					if st.BindingInternBytes > peakIntern {
						peakIntern = st.BindingInternBytes
					}
					if st.ReorderDepth > maxDepth {
						t.Fatalf("reorder depth %d exceeds the cap %d", st.ReorderDepth, maxDepth)
					}
				}
				st, err := sess.Stats()
				if err != nil {
					t.Fatal(err)
				}
				if st.LateDropped != 0 || st.ReorderShed != 0 {
					t.Fatalf("events lost within slack and cap: dropped=%d shed=%d", st.LateDropped, st.ReorderShed)
				}
				if err := sess.Close(); err != nil {
					t.Fatal(err)
				}
				got := sub.Drain()
				if len(want) == 0 {
					t.Fatal("no results; differential test is vacuous")
				}
				if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
					t.Errorf("bounded-state session diverges from unbounded run\ngot:  %v\nwant: %v", got, want)
				}

				// The unbounded reference must ramp well past the bounded
				// session's peak for slot-carrying queries, or the bound
				// proves nothing. (Pattern granularity has no slots — both
				// sides stay at zero.)
				ref := cogra.NewSession(opts...)
				refSub, err := ref.Subscribe(cogra.MustParse(src))
				if err != nil {
					t.Fatal(err)
				}
				if err := ref.PushBatch(events); err != nil {
					t.Fatal(err)
				}
				rst, err := ref.Stats()
				if err != nil {
					t.Fatal(err)
				}
				if err := ref.Close(); err != nil {
					t.Fatal(err)
				}
				refSub.Drain()
				if strings.Contains(name, "slots") {
					if peakIntern == 0 {
						t.Error("no intern footprint tracked for a slot query")
					}
					if rst.BindingInternBytes < 3*peakIntern {
						t.Errorf("unbounded run (%dB) did not ramp past bounded peak (%dB); plateau vacuous",
							rst.BindingInternBytes, peakIntern)
					}
				}
			})
		}
	}
}

// TestSessionInternPlateau samples the evicted footprint over a long
// rotating-cardinality run and asserts a plateau: after warmup the
// footprint never exceeds a small multiple of its warmup level, even
// though fresh slot values keep arriving for ~60 more epochs.
func TestSessionInternPlateau(t *testing.T) {
	events := lifecycleStream(8000)
	src := lifecycleQueries()["type-slots"]
	sess := cogra.NewSession(cogra.WithSlack(4), cogra.WithInternEviction())
	if _, err := sess.Subscribe(cogra.MustParse(src)); err != nil {
		t.Fatal(err)
	}
	var warmup, later int64
	for i, e := range events {
		if err := sess.Push(e); err != nil {
			t.Fatal(err)
		}
		if i == len(events)/4 {
			st, err := sess.Stats()
			if err != nil {
				t.Fatal(err)
			}
			warmup = st.BindingInternBytes
		}
		if i > len(events)/4 && i%512 == 0 {
			st, err := sess.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.BindingInternBytes > later {
				later = st.BindingInternBytes
			}
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if warmup == 0 || later == 0 {
		t.Fatal("plateau not measured")
	}
	if later > 2*warmup {
		t.Errorf("BindingInternBytes ramps under eviction: warmup %dB, later peak %dB", warmup, later)
	}
}

// TestSessionCatalogCompaction: unsubscribe retires the symbols only
// the leaving query referenced — the catalog id-space sizes shrink and
// a compaction is published — and churning distinct queries no longer
// ratchets the id spaces up (retired ids are recycled).
func TestSessionCatalogCompaction(t *testing.T) {
	for mode, opts := range sessionModes() {
		t.Run(mode, func(t *testing.T) {
			events := lifecycleStream(600)
			sess := cogra.NewSession(opts...)
			if _, err := sess.Subscribe(cogra.MustParse(lifecycleQueries()["type-slots"])); err != nil {
				t.Fatal(err)
			}
			if err := sess.PushBatch(events[:200]); err != nil {
				t.Fatal(err)
			}
			base, err := sess.Stats()
			if err != nil {
				t.Fatal(err)
			}

			// Churn: each round subscribes a query over its own unique
			// event type and attribute, then unsubscribes it mid-stream.
			peakTypes, peakAttrs := 0, 0
			for round := 0; round < 12; round++ {
				src := fmt.Sprintf(`
					RETURN COUNT(*)
					PATTERN Churn%d+
					SEMANTICS skip-till-any-match
					WHERE [patient] AND [Churn%d.extra%d]
					GROUP-BY patient
					WITHIN 64 SLIDE 64`, round, round, round)
				sub, err := sess.Subscribe(cogra.MustParse(src))
				if err != nil {
					t.Fatal(err)
				}
				if err := sess.PushBatch(events[200+round*30 : 230+round*30]); err != nil {
					t.Fatal(err)
				}
				st, err := sess.Stats()
				if err != nil {
					t.Fatal(err)
				}
				if st.InternedTypes > peakTypes {
					peakTypes = st.InternedTypes
				}
				if st.InternedAttrs > peakAttrs {
					peakAttrs = st.InternedAttrs
				}
				sub.Unsubscribe()
				if err := sub.Err(); err != nil {
					t.Fatal(err)
				}
			}
			st, err := sess.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.CatalogCompactions == 0 {
				t.Error("no compaction published across 12 unsubscribe cycles")
			}
			// After the churn the id spaces are back at the resident
			// fleet's footprint: each round's type/attr were retired.
			if st.InternedTypes != base.InternedTypes || st.InternedAttrs != base.InternedAttrs {
				t.Errorf("id spaces did not shrink back: types %d->%d, attrs %d->%d",
					base.InternedTypes, st.InternedTypes, base.InternedAttrs, st.InternedAttrs)
			}
			// And the peak while churning stays one round's worth above
			// the base — recycling, not ratcheting.
			if peakTypes > base.InternedTypes+1 || peakAttrs > base.InternedAttrs+1 {
				t.Errorf("id spaces ratcheted during churn: peak types %d (base %d), peak attrs %d (base %d)",
					peakTypes, base.InternedTypes, peakAttrs, base.InternedAttrs)
			}
			// The resident query is untouched throughout.
			if err := sess.PushBatch(events[560:]); err != nil {
				t.Fatal(err)
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSessionCatalogSlotTruncation pins the physical side of
// compaction: retiring the highest-id symbols truncates their slots
// off the id arrays (Stats().InternedTypeSlots/InternedAttrSlots)
// rather than leaving tombstones to probe forever. Interior
// tombstones — retired while a later subscriber still holds higher
// ids — stay in place until everything above them goes, then the
// whole dead tail truncates at once.
func TestSessionCatalogSlotTruncation(t *testing.T) {
	events := lifecycleStream(300)
	sess := cogra.NewSession()
	defer sess.Close()
	if _, err := sess.Subscribe(cogra.MustParse(lifecycleQueries()["type-slots"])); err != nil {
		t.Fatal(err)
	}
	if err := sess.PushBatch(events[:100]); err != nil {
		t.Fatal(err)
	}
	base, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if base.InternedTypeSlots != base.InternedTypes || base.InternedAttrSlots != base.InternedAttrs {
		t.Fatalf("fresh session has tombstones: type slots %d live %d, attr slots %d live %d",
			base.InternedTypeSlots, base.InternedTypes, base.InternedAttrSlots, base.InternedAttrs)
	}

	churn := func(i int) string {
		return fmt.Sprintf(`
			RETURN COUNT(*)
			PATTERN Trunc%d+
			SEMANTICS skip-till-any-match
			WHERE [patient] AND [Trunc%d.slot%d]
			GROUP-BY patient
			WITHIN 64 SLIDE 64`, i, i, i)
	}
	// Two churn subscribers stacked: lo holds lower ids than hi.
	lo, err := sess.Subscribe(cogra.MustParse(churn(0)))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := sess.Subscribe(cogra.MustParse(churn(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.PushBatch(events[100:200]); err != nil {
		t.Fatal(err)
	}
	grown, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if grown.InternedTypeSlots <= base.InternedTypeSlots || grown.InternedAttrSlots <= base.InternedAttrSlots {
		t.Fatalf("churn subscribers did not grow the id spaces: type slots %d->%d, attr slots %d->%d",
			base.InternedTypeSlots, grown.InternedTypeSlots, base.InternedAttrSlots, grown.InternedAttrSlots)
	}

	// Retiring lo leaves interior tombstones: hi still pins the ids
	// above them, so no physical shrink yet.
	lo.Unsubscribe()
	mid, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if mid.InternedTypeSlots != grown.InternedTypeSlots || mid.InternedAttrSlots != grown.InternedAttrSlots {
		t.Errorf("interior tombstones moved live ids: type slots %d->%d, attr slots %d->%d",
			grown.InternedTypeSlots, mid.InternedTypeSlots, grown.InternedAttrSlots, mid.InternedAttrSlots)
	}
	if mid.InternedTypes != base.InternedTypes+1 || mid.InternedAttrs != base.InternedAttrs+1 {
		t.Errorf("live counts after retiring lo: types %d (want %d), attrs %d (want %d)",
			mid.InternedTypes, base.InternedTypes+1, mid.InternedAttrs, base.InternedAttrs+1)
	}

	// Retiring hi makes the entire dead tail trailing — lo's interior
	// tombstones included — and the arrays truncate back to the
	// resident footprint.
	hi.Unsubscribe()
	final, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if final.InternedTypeSlots != base.InternedTypeSlots || final.InternedAttrSlots != base.InternedAttrSlots {
		t.Errorf("dead tail not truncated: type slots %d (want %d), attr slots %d (want %d)",
			final.InternedTypeSlots, base.InternedTypeSlots, final.InternedAttrSlots, base.InternedAttrSlots)
	}
	if final.InternedTypeSlots != final.InternedTypes || final.InternedAttrSlots != final.InternedAttrs {
		t.Errorf("tombstones survive full churn: type slots %d live %d, attr slots %d live %d",
			final.InternedTypeSlots, final.InternedTypes, final.InternedAttrSlots, final.InternedAttrs)
	}
	// The resident query is untouched.
	if err := sess.PushBatch(events[200:]); err != nil {
		t.Fatal(err)
	}
}

// TestSessionCompactionKeepsResidentResults pins compaction as
// invisible to the surviving fleet: a session that churns disjoint
// queries mid-stream leaves the resident query byte-identical to an
// undisturbed solo run.
func TestSessionCompactionKeepsResidentResults(t *testing.T) {
	events := lifecycleStream(2000)
	src := lifecycleQueries()["type-slots"]
	for mode, opts := range sessionModes() {
		t.Run(mode, func(t *testing.T) {
			want := soloRun(t, src, events)

			sess := cogra.NewSession(opts...)
			sub, err := sess.Subscribe(cogra.MustParse(src))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < len(events); i += 250 {
				end := min(i+250, len(events))
				if err := sess.PushBatch(events[i:end]); err != nil {
					t.Fatal(err)
				}
				csrc := fmt.Sprintf(`
					RETURN COUNT(*)
					PATTERN Side%d+
					SEMANTICS skip-till-any-match
					WHERE [patient] AND [Side%d.x%d]
					GROUP-BY patient WITHIN 32 SLIDE 32`, i, i, i)
				csub, err := sess.Subscribe(cogra.MustParse(csrc))
				if err != nil {
					t.Fatal(err)
				}
				csub.Unsubscribe()
				if err := csub.Err(); err != nil {
					t.Fatal(err)
				}
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
			got := sub.Drain()
			if len(want) == 0 {
				t.Fatal("no results; test is vacuous")
			}
			if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Errorf("churn-compaction disturbed the resident query\ngot:  %v\nwant: %v", got, want)
			}
		})
	}
}

// TestSessionFailedSubscribeDoesNotLeakSymbols: a Subscribe that
// compiles its query but is then rejected (frozen routing under
// StrictRouting) must not leave the compiled symbols behind — a
// fleet retrying failed subscribes would otherwise ratchet the id
// spaces (and the per-event resolver probe loop) without bound.
func TestSessionFailedSubscribeDoesNotLeakSymbols(t *testing.T) {
	events := lifecycleStream(300)
	sess := cogra.NewSession(cogra.WithWorkers(4))
	if _, err := sess.Subscribe(cogra.MustParse(lifecycleQueries()["type-slots"])); err != nil {
		t.Fatal(err)
	}
	if err := sess.PushBatch(events); err != nil {
		t.Fatal(err) // routing now frozen on [patient]
	}
	base, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		src := fmt.Sprintf(`
			RETURN COUNT(*)
			PATTERN Novel%d+
			SEMANTICS skip-till-any-match
			WHERE [novel%d]
			GROUP-BY novel%d
			WITHIN 10 SLIDE 10`, i, i, i)
		_, err := sess.Subscribe(cogra.MustParse(src), cogra.StrictRouting())
		if !errors.Is(err, cogra.ErrFrozenRouting) {
			t.Fatalf("subscribe %d: err = %v, want ErrFrozenRouting", i, err)
		}
	}
	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.InternedTypes != base.InternedTypes || st.InternedAttrs != base.InternedAttrs {
		t.Errorf("failed subscribes leaked symbols: types %d->%d, attrs %d->%d",
			base.InternedTypes, st.InternedTypes, base.InternedAttrs, st.InternedAttrs)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionStalePlanRejected: a plan compiled against the session's
// catalog but never hosted loses its symbols to a compaction; hosting
// it afterwards fails with ErrNotHosted instead of dispatching through
// recycled ids.
func TestSessionStalePlanRejected(t *testing.T) {
	sess := cogra.NewSession()
	q := cogra.MustParse(`
		RETURN COUNT(*)
		PATTERN Zed+
		SEMANTICS skip-till-any-match
		WHERE [patient] AND [Zed.zattr]
		GROUP-BY patient WITHIN 10 SLIDE 10`)
	stale, err := cogra.CompileIn(sess.Catalog(), q)
	if err != nil {
		t.Fatal(err)
	}
	// Host and drop another query over the same symbols: its
	// unsubscribe retires Zed/zattr (the stale plan holds no refs).
	sub, err := sess.Subscribe(cogra.MustParse(`
		RETURN COUNT(*)
		PATTERN Zed+
		SEMANTICS skip-till-any-match
		WHERE [patient] AND [Zed.zattr]
		GROUP-BY patient WITHIN 10 SLIDE 10`))
	if err != nil {
		t.Fatal(err)
	}
	sub.Unsubscribe()
	if err := sub.Err(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.SubscribePlan(stale); !errors.Is(err, cogra.ErrNotHosted) {
		t.Fatalf("stale plan accepted after compaction: err = %v", err)
	}
	// Recompiling picks up fresh ids and hosts fine.
	fresh, err := cogra.CompileIn(sess.Catalog(), q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.SubscribePlan(fresh); err != nil {
		t.Fatalf("recompiled plan rejected: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionBackpressure: a full depth-capped buffer under the Reject
// policy fails Push with ErrBackpressure without ingesting the event,
// and the session recovers as soon as the watermark advances; under
// ShedOldest the overflow is dispatched instead and counted.
func TestSessionBackpressure(t *testing.T) {
	t.Run("reject", func(t *testing.T) {
		sess := cogra.NewSession(cogra.WithSlack(1000),
			cogra.WithMaxReorderDepth(4), cogra.WithDepthPolicy(cogra.Reject))
		if _, err := sess.Subscribe(cogra.MustParse(lifecycleQueries()["type-slots"])); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := sess.Push(cogra.NewEvent("A", int64(i)).WithSym("patient", "p0").WithSym("u", "u")); err != nil {
				t.Fatal(err)
			}
		}
		rejected := cogra.NewEvent("A", 2).WithSym("patient", "p0").WithSym("u", "u")
		err := sess.Push(rejected)
		if !errors.Is(err, cogra.ErrBackpressure) {
			t.Fatalf("err = %v, want ErrBackpressure", err)
		}
		if rejected.ID != 0 {
			t.Fatalf("rejected event kept arrival-order stamp %d; a retry would emit out of arrival order", rejected.ID)
		}
		// A watermark-advancing event is still admitted and drains.
		if err := sess.Push(cogra.NewEvent("A", 2000).WithSym("patient", "p0").WithSym("u", "u")); err != nil {
			t.Fatalf("watermark-advancing push rejected: %v", err)
		}
		st, err := sess.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.ReorderDepth > 4 {
			t.Fatalf("depth %d exceeds cap", st.ReorderDepth)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("shed", func(t *testing.T) {
		sess := cogra.NewSession(cogra.WithSlack(1000), cogra.WithMaxReorderDepth(4))
		if _, err := sess.Subscribe(cogra.MustParse(lifecycleQueries()["type-slots"])); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			if err := sess.Push(cogra.NewEvent("A", int64(i)).WithSym("patient", "p0").WithSym("u", "u")); err != nil {
				t.Fatal(err)
			}
		}
		st, err := sess.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.ReorderShed != 8 {
			t.Errorf("ReorderShed = %d, want 8 (12 pushed, cap 4)", st.ReorderShed)
		}
		if st.ReorderDepth != 4 {
			t.Errorf("ReorderDepth = %d, want 4", st.ReorderDepth)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSessionStatsConcurrentWithPush is the data-race regression test:
// Stats must be callable from a monitoring goroutine while the feeding
// goroutine pushes batches through the slack buffer (run under -race
// in CI).
func TestSessionStatsConcurrentWithPush(t *testing.T) {
	events := lifecycleStream(3000)
	shuffled, slack := shuffleBounded(events, 4, 11)
	for mode, opts := range sessionModes() {
		t.Run(mode, func(t *testing.T) {
			sess := cogra.NewSession(append(opts[:len(opts):len(opts)],
				cogra.WithSlack(slack), cogra.WithInternEviction())...)
			sub, err := sess.Subscribe(cogra.MustParse(lifecycleQueries()["type-slots"]))
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					if _, err := sess.Stats(); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			for i := 0; i < len(shuffled); i += 64 {
				end := min(i+64, len(shuffled))
				if err := sess.PushBatch(shuffled[i:end]); err != nil {
					t.Fatal(err)
				}
				// Drain between pushes: result pulling on the feeding
				// goroutine shares router/engine state with Stats too.
				sub.Drain()
			}
			close(done)
			wg.Wait()
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
