package cogra_test

// Differential tests pinning the Session API's dynamic-membership
// semantics:
//
//   - subscribe-at-event-k equals a pre-stream subscriber (a solo run)
//     fed the suffix, from the first fully covered window on;
//   - unsubscribe-at-event-k equals a solo run fed the prefix;
//   - a churning fleet (random subscribe/unsubscribe schedule) holds
//     both properties for every membership interval, across all three
//     granularities and 1/4 workers (run under -race in CI).

import (
	"fmt"
	"math/rand"
	"testing"

	cogra "repro"
	"repro/internal/fuzz/diff"
)

// sessionTestStream emits a multi-type stream: A/B sequences, M
// measurement random walks and X noise, all carrying patient (the
// shared partition attribute), ward (a secondary key) and a numeric
// payload. Time stamps repeat (dense runs) and jump (idle gaps); IDs
// are pre-assigned so the same slice can feed concurrent workers and
// reference runs without mutation.
func sessionTestStream(n int) []*cogra.Event {
	rng := rand.New(rand.NewSource(17))
	rates := [3]float64{60, 70, 80}
	out := make([]*cogra.Event, 0, n)
	tm := int64(0)
	for i := 0; i < n; i++ {
		p := rng.Intn(3)
		patient := fmt.Sprintf("p%d", p)
		ward := fmt.Sprintf("w%d", rng.Intn(2))
		var ev *cogra.Event
		switch x := rng.Intn(10); {
		case x < 3:
			ev = cogra.NewEvent("A", tm).WithSym("patient", patient).
				WithSym("ward", ward).WithNum("v", float64(rng.Intn(100)))
		case x < 5:
			ev = cogra.NewEvent("B", tm).WithSym("patient", patient).
				WithSym("ward", ward).WithNum("v", float64(rng.Intn(100)))
		case x < 8:
			rates[p] += float64(rng.Intn(7)) - 3
			ev = cogra.NewEvent("M", tm).WithSym("patient", patient).
				WithSym("ward", ward).WithNum("rate", rates[p])
		default:
			ev = cogra.NewEvent("X", tm).WithSym("patient", patient).
				WithSym("ward", ward).WithNum("noise", 1)
		}
		ev.ID = int64(i + 1)
		out = append(out, ev)
		switch rng.Intn(8) {
		case 0, 1, 2: // dense run: same time stamp
		case 7:
			tm += 30 + int64(rng.Intn(150)) // idle gap spanning windows
		default:
			tm++
		}
	}
	return out
}

// sessionTestQueries covers the three granularities plus the
// contiguous wants-all path; every query partitions by patient so a
// 4-worker session routes on a shared attribute.
func sessionTestQueries() map[string]string {
	return map[string]string{
		"type": `
			RETURN COUNT(*), SUM(A.v)
			PATTERN (SEQ(A+, B))+
			SEMANTICS skip-till-any-match
			WHERE [patient] GROUP-BY patient
			WITHIN 64 SLIDE 32`,
		"mixed": `
			RETURN COUNT(*), MAX(M.rate)
			PATTERN M+
			SEMANTICS skip-till-any-match
			WHERE [patient] AND M.rate < NEXT(M).rate
			GROUP-BY patient
			WITHIN 64 SLIDE 64`,
		"pattern": `
			RETURN COUNT(*)
			PATTERN M+
			SEMANTICS skip-till-next-match
			WHERE [patient] AND M.rate <= NEXT(M).rate
			GROUP-BY patient
			WITHIN 96 SLIDE 48`,
		"contiguous": `
			RETURN COUNT(*)
			PATTERN M+
			SEMANTICS contiguous
			WHERE [patient] GROUP-BY patient
			WITHIN 64 SLIDE 64`,
	}
}

// soloRun executes one query alone over a slice of the stream — the
// pre-stream-subscriber reference — and returns its results
// (diff.SoloRun with the error lifted to t.Fatal).
func soloRun(t *testing.T, src string, events []*cogra.Event) []cogra.Result {
	t.Helper()
	rs, err := diff.SoloRun(src, events)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// fullWindowsAfter keeps the results of windows fully covered by an
// observer joining at watermark t: those starting strictly after t.
func fullWindowsAfter(results []cogra.Result, t int64) []cogra.Result {
	return diff.FullWindowsAfter(results, t)
}

func sessionModes() map[string][]cogra.SessionOption {
	return map[string][]cogra.SessionOption{
		"inline":   nil,
		"workers4": {cogra.WithWorkers(4)},
	}
}

// TestSessionSubscribeMidStreamMatchesSuffix: for every granularity
// and for both the inline and the 4-worker session, a query subscribed
// at event k produces, from its first fully covered window on, results
// byte-identical to a pre-stream subscriber fed the same suffix.
func TestSessionSubscribeMidStreamMatchesSuffix(t *testing.T) {
	events := sessionTestStream(3000)
	k := len(events) / 3
	joinTime := events[k-1].Time
	for mode, opts := range sessionModes() {
		for name, src := range sessionTestQueries() {
			t.Run(mode+"/"+name, func(t *testing.T) {
				sess := cogra.NewSession(opts...)
				// A standing query keeps the stream busy before the join.
				standing, err := sess.Subscribe(cogra.MustParse(sessionTestQueries()["type"]))
				if err != nil {
					t.Fatal(err)
				}
				if err := sess.ProcessAll(events[:k]); err != nil {
					t.Fatal(err)
				}
				late, err := sess.Subscribe(cogra.MustParse(src))
				if err != nil {
					t.Fatal(err)
				}
				if err := sess.ProcessAll(events[k:]); err != nil {
					t.Fatal(err)
				}
				if err := sess.Close(); err != nil {
					t.Fatal(err)
				}
				got := late.Drain()
				want := fullWindowsAfter(soloRun(t, src, events[k:]), joinTime)
				if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
					t.Errorf("mid-stream subscriber diverges from suffix solo run\ngot:  %v\nwant: %v", got, want)
				}
				if len(want) == 0 {
					t.Error("no results; differential test is vacuous")
				}
				// The standing query must equal its own full-stream solo run.
				sGot := standing.Drain()
				sWant := soloRun(t, sessionTestQueries()["type"], events)
				if fmt.Sprintf("%v", sGot) != fmt.Sprintf("%v", sWant) {
					t.Errorf("standing query disturbed by mid-stream subscribe\ngot:  %v\nwant: %v", sGot, sWant)
				}
			})
		}
	}
}

// TestSessionUnsubscribeMatchesPrefix: unsubscribing at event k flushes
// exactly the results a solo run over the prefix reports, and the rest
// of the fleet is untouched.
func TestSessionUnsubscribeMatchesPrefix(t *testing.T) {
	events := sessionTestStream(3000)
	k := len(events) / 2
	for mode, opts := range sessionModes() {
		for name, src := range sessionTestQueries() {
			t.Run(mode+"/"+name, func(t *testing.T) {
				sess := cogra.NewSession(opts...)
				leaving, err := sess.Subscribe(cogra.MustParse(src))
				if err != nil {
					t.Fatal(err)
				}
				standing, err := sess.Subscribe(cogra.MustParse(sessionTestQueries()["mixed"]))
				if err != nil {
					t.Fatal(err)
				}
				if err := sess.ProcessAll(events[:k]); err != nil {
					t.Fatal(err)
				}
				got := leaving.Unsubscribe()
				if err := leaving.Err(); err != nil {
					t.Fatal(err)
				}
				if err := sess.ProcessAll(events[k:]); err != nil {
					t.Fatal(err)
				}
				if err := sess.Close(); err != nil {
					t.Fatal(err)
				}
				want := soloRun(t, src, events[:k])
				if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
					t.Errorf("unsubscribe flush diverges from prefix solo run\ngot:  %v\nwant: %v", got, want)
				}
				if len(want) == 0 {
					t.Error("no results; differential test is vacuous")
				}
				sGot := standing.Drain()
				sWant := soloRun(t, sessionTestQueries()["mixed"], events)
				if fmt.Sprintf("%v", sGot) != fmt.Sprintf("%v", sWant) {
					t.Errorf("standing query disturbed by unsubscribe\ngot:  %v\nwant: %v", sGot, sWant)
				}
			})
		}
	}
}

// TestSessionChurn runs a random subscribe/unsubscribe schedule over
// the fleet — including a ward-keyed and an unpartitioned query that
// break worker-locality mid-stream — and verifies every membership
// interval [join, leave) against a filtered solo run of its slice of
// the stream. CI runs this under -race for the 4-worker session.
func TestSessionChurn(t *testing.T) {
	events := sessionTestStream(4000)
	specs := []string{
		sessionTestQueries()["type"],
		sessionTestQueries()["mixed"],
		sessionTestQueries()["pattern"],
		sessionTestQueries()["contiguous"],
		// Ward-keyed: does not cover the [patient] routing attribute,
		// so a mid-stream subscribe falls back to the full-stream
		// worker in parallel sessions.
		`RETURN COUNT(*)
		 PATTERN A+
		 SEMANTICS skip-till-any-match
		 WHERE [ward] GROUP-BY ward
		 WITHIN 50 SLIDE 50`,
		// Unpartitioned: no stream keys at all.
		`RETURN COUNT(*)
		 PATTERN (SEQ(A+, B))+
		 SEMANTICS skip-till-any-match
		 WITHIN 80 SLIDE 40`,
	}

	type interval struct {
		spec    int
		join    int // first event index the subscription observes
		sub     *cogra.Subscription
		results []cogra.Result
		leave   int
	}

	for mode, opts := range sessionModes() {
		t.Run(mode, func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			sess := cogra.NewSession(opts...)
			var live []*interval
			var done []*interval

			subscribe := func(spec, at int) {
				sub, err := sess.Subscribe(cogra.MustParse(specs[spec]))
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, &interval{spec: spec, join: at, sub: sub})
			}
			unsubscribe := func(li, at int) {
				iv := live[li]
				live = append(live[:li], live[li+1:]...)
				iv.results = iv.sub.Unsubscribe()
				if err := iv.sub.Err(); err != nil {
					t.Fatal(err)
				}
				iv.leave = at
				done = append(done, iv)
			}

			// The founding query pins the routing attributes to
			// [patient] before the first event.
			subscribe(0, 0)
			for i, e := range events {
				if err := sess.Process(e); err != nil {
					t.Fatal(err)
				}
				if rng.Intn(100) != 0 {
					continue
				}
				// Membership change after event i.
				if len(live) > 2 && rng.Intn(2) == 0 {
					unsubscribe(rng.Intn(len(live)), i+1)
				} else {
					subscribe(rng.Intn(len(specs)), i+1)
				}
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
			for _, iv := range live {
				iv.results = iv.sub.Drain()
				iv.leave = len(events)
				done = append(done, iv)
			}

			checked := 0
			for _, iv := range done {
				want := soloRun(t, specs[iv.spec], events[iv.join:iv.leave])
				if iv.join > 0 {
					want = fullWindowsAfter(want, events[iv.join-1].Time)
				}
				if fmt.Sprintf("%v", iv.results) != fmt.Sprintf("%v", want) {
					t.Errorf("spec %d over [%d,%d) diverges from filtered solo run\ngot:  %v\nwant: %v",
						iv.spec, iv.join, iv.leave, iv.results, want)
				}
				if len(want) > 0 {
					checked++
				}
			}
			if len(done) < 8 || checked < len(done)/2 {
				t.Errorf("churn too tame: %d intervals, %d with results", len(done), checked)
			}
		})
	}
}

// TestSessionStatsAndInternRelease: Session.Stats exposes the intern
// id-space and the engines' binding intern footprint, and
// unsubscribing the last query referencing a high-cardinality
// equivalence attribute releases that footprint — in both session
// modes.
func TestSessionStatsAndInternRelease(t *testing.T) {
	hot := `
		RETURN COUNT(*)
		PATTERN A+
		SEMANTICS skip-till-any-match
		WHERE [A.tag] AND [patient]
		GROUP-BY patient
		WITHIN 100000 SLIDE 100000`
	cold := `
		RETURN COUNT(*)
		PATTERN A+
		SEMANTICS skip-till-any-match
		WHERE [patient] GROUP-BY patient
		WITHIN 100000 SLIDE 100000`
	for mode, opts := range sessionModes() {
		t.Run(mode, func(t *testing.T) {
			sess := cogra.NewSession(opts...)
			hotSub, err := sess.Subscribe(cogra.MustParse(hot))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Subscribe(cogra.MustParse(cold)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 1024; i++ {
				ev := cogra.NewEvent("A", int64(i)).
					WithSym("patient", fmt.Sprintf("p%d", i%3)).
					WithSym("tag", fmt.Sprintf("tag-%d", i)) // high cardinality
				ev.ID = int64(i + 1)
				if err := sess.Process(ev); err != nil {
					t.Fatal(err)
				}
			}
			st, err := sess.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Queries != 2 || st.Events != 1024 {
				t.Errorf("stats = %+v", st)
			}
			if st.InternedTypes == 0 || st.InternedAttrs == 0 {
				t.Errorf("intern id spaces empty: %+v", st)
			}
			if st.BindingInternBytes <= 0 {
				t.Fatalf("high-cardinality equivalence interned nothing: %+v", st)
			}
			if st.PeakBytes <= 0 {
				t.Errorf("peak bytes not tracked: %+v", st)
			}

			if res := hotSub.Unsubscribe(); len(res) == 0 || hotSub.Err() != nil {
				t.Fatalf("unsubscribe: results=%d err=%v", len(res), hotSub.Err())
			}
			st, err = sess.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.BindingInternBytes != 0 {
				t.Errorf("binding intern bytes after releasing the only slotted query = %d, want 0",
					st.BindingInternBytes)
			}
			if st.Queries != 1 {
				t.Errorf("queries = %d, want 1", st.Queries)
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSessionLifecycleErrors pins the error surface: process/subscribe
// after close, double unsubscribe, unsubscribe after close.
func TestSessionLifecycleErrors(t *testing.T) {
	sess := cogra.NewSession()
	sub, err := sess.Subscribe(cogra.MustParse(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Process(cogra.NewEvent("A", 5)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Process(cogra.NewEvent("A", 1)); err == nil {
		t.Error("out-of-order event accepted")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err == nil {
		t.Error("double Close accepted")
	}
	if err := sess.Process(cogra.NewEvent("A", 9)); err == nil {
		t.Error("Process after Close accepted")
	}
	if _, err := sess.Subscribe(cogra.MustParse(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`)); err == nil {
		t.Error("Subscribe after Close accepted")
	}
	if res := sub.Drain(); len(res) != 1 {
		t.Errorf("results after close = %v", res)
	}
	if sub.Unsubscribe(); sub.Err() == nil {
		t.Error("Unsubscribe after Close recorded no error")
	}
}

// TestSessionUnsubscribeFromCallbackIsRetriable: an Unsubscribe issued
// inside an OnResult callback is rejected (Process is mid-dispatch)
// but must leave the subscription active, so deferring it until
// Process returns — as the error advises — works and recovers the
// query's results.
func TestSessionUnsubscribeFromCallbackIsRetriable(t *testing.T) {
	sess := cogra.NewSession()
	var watched *cogra.Subscription
	fired := false
	watched, err := sess.Subscribe(
		cogra.MustParse(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`),
		cogra.OnResult(func(cogra.Result) {
			fired = true
			watched.Unsubscribe() // mid-dispatch: must be rejected
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Process(cogra.NewEvent("A", 1)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Process(cogra.NewEvent("A", 15)); err != nil { // closes [0,10)
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("callback never fired; test is vacuous")
	}
	if watched.Err() == nil {
		t.Error("mid-dispatch Unsubscribe recorded no error")
	}
	if !watched.Active() {
		t.Fatal("rejected Unsubscribe deactivated the subscription")
	}
	watched.Unsubscribe() // deferred retry, outside Process
	if watched.Active() {
		t.Error("deferred Unsubscribe did not detach the query")
	}
	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 0 {
		t.Errorf("queries after deferred unsubscribe = %d, want 0", st.Queries)
	}
}
