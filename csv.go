package cogra

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/event"
)

// CSV support for heterogeneous event streams. The header names the
// shared column set:
//
//	time,type,company,sector,price:num,volume:num
//
// Columns suffixed ":num" are numeric attributes, all others symbolic;
// empty cells mean "attribute absent on this event", which is how
// streams carrying several event types with different schemas share
// one file.

// WriteCSV writes events with the union of their attributes as
// columns. Events must already be in stream order.
func WriteCSV(w io.Writer, events []*Event) error {
	numSet := map[string]bool{}
	symSet := map[string]bool{}
	for _, e := range events {
		for k := range e.Num {
			numSet[k] = true
		}
		for k := range e.Sym {
			symSet[k] = true
		}
	}
	var numCols, symCols []string
	for k := range numSet {
		numCols = append(numCols, k)
	}
	for k := range symSet {
		if !numSet[k] {
			symCols = append(symCols, k)
		}
	}
	sort.Strings(numCols)
	sort.Strings(symCols)

	bw := bufio.NewWriter(w)
	bw.WriteString("time,type")
	for _, c := range symCols {
		fmt.Fprintf(bw, ",%s", c)
	}
	for _, c := range numCols {
		fmt.Fprintf(bw, ",%s:num", c)
	}
	bw.WriteByte('\n')
	for _, e := range events {
		fmt.Fprintf(bw, "%d,%s", e.Time, e.Type)
		for _, c := range symCols {
			bw.WriteByte(',')
			if v, ok := e.Sym[c]; ok {
				bw.WriteString(v)
			}
		}
		for _, c := range numCols {
			bw.WriteByte(',')
			if v, ok := e.Num[c]; ok {
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadCSV parses a stream written by WriteCSV (or hand-authored in the
// same format) and returns the events in file order.
func ReadCSV(r io.Reader) ([]*Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("cogra: empty CSV input")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	if len(header) < 2 || header[0] != "time" || header[1] != "type" {
		return nil, fmt.Errorf("cogra: CSV header must start with time,type; got %q", sc.Text())
	}
	type col struct {
		name    string
		numeric bool
	}
	cols := make([]col, 0, len(header)-2)
	for _, h := range header[2:] {
		if name, ok := strings.CutSuffix(h, ":num"); ok {
			cols = append(cols, col{name: name, numeric: true})
		} else {
			cols = append(cols, col{name: h})
		}
	}
	var out []*Event
	line := 1
	for sc.Scan() {
		line++
		row := strings.TrimSpace(sc.Text())
		if row == "" {
			continue
		}
		cells := strings.Split(row, ",")
		if len(cells) != 2+len(cols) {
			return nil, fmt.Errorf("cogra: line %d: %d cells, want %d", line, len(cells), 2+len(cols))
		}
		tm, err := strconv.ParseInt(cells[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cogra: line %d: bad time %q: %w", line, cells[0], err)
		}
		e := event.New(cells[1], tm)
		for i, c := range cols {
			cell := cells[2+i]
			if cell == "" {
				continue
			}
			if c.numeric {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("cogra: line %d: bad numeric %s=%q: %w", line, c.name, cell, err)
				}
				e.WithNum(c.name, v)
			} else {
				e.WithSym(c.name, cell)
			}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
