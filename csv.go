package cogra

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/event"
)

// CSV support for heterogeneous event streams. The header names the
// shared column set:
//
//	time,type,company,sector,price:num,volume:num
//
// Columns suffixed ":num" are numeric attributes, all others symbolic;
// empty cells mean "attribute absent on this event", which is how
// streams carrying several event types with different schemas share
// one file.

// WriteCSV writes events with the union of their attributes as
// columns. Events must already be in stream order.
func WriteCSV(w io.Writer, events []*Event) error {
	numSet := map[string]bool{}
	symSet := map[string]bool{}
	for _, e := range events {
		for k := range e.Num {
			numSet[k] = true
		}
		for k := range e.Sym {
			symSet[k] = true
		}
	}
	var numCols, symCols []string
	for k := range numSet {
		numCols = append(numCols, k)
	}
	for k := range symSet {
		if !numSet[k] {
			symCols = append(symCols, k)
		}
	}
	sort.Strings(numCols)
	sort.Strings(symCols)

	bw := bufio.NewWriter(w)
	bw.WriteString("time,type")
	for _, c := range symCols {
		fmt.Fprintf(bw, ",%s", c)
	}
	for _, c := range numCols {
		fmt.Fprintf(bw, ",%s:num", c)
	}
	bw.WriteByte('\n')
	for _, e := range events {
		fmt.Fprintf(bw, "%d,%s", e.Time, e.Type)
		for _, c := range symCols {
			bw.WriteByte(',')
			if v, ok := e.Sym[c]; ok {
				bw.WriteString(v)
			}
		}
		for _, c := range numCols {
			bw.WriteByte(',')
			if v, ok := e.Num[c]; ok {
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// CSVDecoder decodes one stream row at a time against a parsed
// header, for callers that consume lines as they arrive (cograql
// -follow tails a live feed) instead of slurping a whole file;
// ReadCSV is built on it.
type CSVDecoder struct {
	cols []csvCol
	line int
}

type csvCol struct {
	name    string
	numeric bool
}

// NewCSVDecoder parses a header line ("time,type,company,price:num").
func NewCSVDecoder(header string) (*CSVDecoder, error) {
	names := strings.Split(strings.TrimSpace(header), ",")
	if len(names) < 2 || names[0] != "time" || names[1] != "type" {
		return nil, fmt.Errorf("cogra: CSV header must start with time,type; got %q", header)
	}
	d := &CSVDecoder{cols: make([]csvCol, 0, len(names)-2), line: 1}
	for _, h := range names[2:] {
		if name, ok := strings.CutSuffix(h, ":num"); ok {
			d.cols = append(d.cols, csvCol{name: name, numeric: true})
		} else {
			d.cols = append(d.cols, csvCol{name: h})
		}
	}
	return d, nil
}

// Decode parses one data row into an event; blank rows decode to
// (nil, nil). Errors cite the 1-based line number, counting the
// header and every row this decoder has seen.
func (d *CSVDecoder) Decode(row string) (*Event, error) {
	d.line++
	row = strings.TrimSpace(row)
	if row == "" {
		return nil, nil
	}
	cells := strings.Split(row, ",")
	if len(cells) != 2+len(d.cols) {
		return nil, fmt.Errorf("cogra: line %d: %d cells, want %d", d.line, len(cells), 2+len(d.cols))
	}
	tm, err := strconv.ParseInt(cells[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("cogra: line %d: bad time %q: %w", d.line, cells[0], err)
	}
	e := event.New(cells[1], tm)
	for i, c := range d.cols {
		cell := cells[2+i]
		if cell == "" {
			continue
		}
		if c.numeric {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("cogra: line %d: bad numeric %s=%q: %w", d.line, c.name, cell, err)
			}
			e.WithNum(c.name, v)
		} else {
			e.WithSym(c.name, cell)
		}
	}
	return e, nil
}

// ReadCSV parses a stream written by WriteCSV (or hand-authored in the
// same format) and returns the events in file order.
func ReadCSV(r io.Reader) ([]*Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("cogra: empty CSV input")
	}
	dec, err := NewCSVDecoder(sc.Text())
	if err != nil {
		return nil, err
	}
	var out []*Event
	for sc.Scan() {
		e, err := dec.Decode(sc.Text())
		if err != nil {
			return nil, err
		}
		if e != nil {
			out = append(out, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
