package cogra_test

// Runnable godoc examples for the batch-first ingest and the pull/push
// egress surface of Session. `go test` executes these against their
// Output blocks, so the documented surface cannot drift.

import (
	"bytes"
	"errors"
	"fmt"

	cogra "repro"
)

// ExampleSession_Push feeds an in-order stream one event at a time and
// pulls the results after Close.
func ExampleSession_Push() {
	q := cogra.MustParse(`
		RETURN COUNT(*)
		PATTERN (SEQ(A+, B))+
		SEMANTICS skip-till-any-match
		WITHIN 100 SLIDE 100`)
	sess := cogra.NewSession()
	sub, _ := sess.Subscribe(q)
	for _, e := range []*cogra.Event{
		cogra.NewEvent("A", 1), cogra.NewEvent("B", 2),
		cogra.NewEvent("A", 3), cogra.NewEvent("A", 4),
		cogra.NewEvent("B", 6), cogra.NewEvent("A", 7),
		cogra.NewEvent("B", 8),
	} {
		if err := sess.Push(e); err != nil {
			fmt.Println(err)
			return
		}
	}
	sess.Close()
	for r := range sub.Results() {
		fmt.Println(r)
	}
	// Output:
	// window [0,100): COUNT(*)=43
}

// ExampleSession_PushBatch ingests a disordered batch: WithSlack
// re-sorts events within the bound, so the results equal the sorted
// stream's.
func ExampleSession_PushBatch() {
	q := cogra.MustParse(`
		RETURN COUNT(*)
		PATTERN A+
		SEMANTICS skip-till-any-match
		WITHIN 10 SLIDE 10`)
	sess := cogra.NewSession(cogra.WithSlack(3))
	sub, _ := sess.Subscribe(q)
	// Events jittered within 3 ticks of in-order arrival.
	batch := []*cogra.Event{
		cogra.NewEvent("A", 2), cogra.NewEvent("A", 1),
		cogra.NewEvent("A", 4), cogra.NewEvent("A", 3),
		cogra.NewEvent("A", 12),
	}
	if err := sess.PushBatch(batch); err != nil {
		fmt.Println(err)
		return
	}
	sess.Close()
	for r := range sub.Results() {
		fmt.Println(r)
	}
	// Output:
	// window [0,10): COUNT(*)=15
	// window [10,20): COUNT(*)=1
}

// ExampleSubscription_Results pulls incrementally while the stream
// runs: each Results call yields what the watermark has closed since
// the last pull.
func ExampleSubscription_Results() {
	q := cogra.MustParse(`
		RETURN COUNT(*)
		PATTERN A+
		SEMANTICS skip-till-any-match
		WITHIN 10 SLIDE 10`)
	sess := cogra.NewSession()
	sub, _ := sess.Subscribe(q)

	sess.PushBatch([]*cogra.Event{cogra.NewEvent("A", 1), cogra.NewEvent("A", 2)})
	sess.Push(cogra.NewEvent("A", 11)) // closes window [0,10)
	for r := range sub.Results() {
		fmt.Println("mid-stream:", r)
	}
	sess.Close() // flushes window [10,20)
	for r := range sub.Results() {
		fmt.Println("after close:", r)
	}
	// Output:
	// mid-stream: window [0,10): COUNT(*)=3
	// after close: window [10,20): COUNT(*)=1
}

// ExampleWithSink streams results as windows close instead of
// buffering them — the push half of the egress surface.
func ExampleWithSink() {
	q := cogra.MustParse(`
		RETURN COUNT(*)
		PATTERN A+
		SEMANTICS skip-till-any-match
		WITHIN 10 SLIDE 10`)
	sess := cogra.NewSession()
	sess.Subscribe(q, cogra.WithSink(cogra.SinkFunc(func(r cogra.Result) {
		fmt.Println("sink:", r)
	})))
	sess.PushBatch([]*cogra.Event{
		cogra.NewEvent("A", 1), cogra.NewEvent("A", 2), cogra.NewEvent("A", 15),
	})
	sess.Close()
	// Output:
	// sink: window [0,10): COUNT(*)=3
	// sink: window [10,20): COUNT(*)=1
}

// ExampleWithMaxReorderDepth caps the slack buffer so a source with a
// stalled watermark cannot balloon it: under the Reject policy a full
// buffer refuses further events with ErrBackpressure until the stream
// advances (the default ShedOldest policy would force-drain the oldest
// buffered events instead, counted in Stats().ReorderShed).
func ExampleWithMaxReorderDepth() {
	q := cogra.MustParse(`
		RETURN COUNT(*)
		PATTERN A+
		SEMANTICS skip-till-any-match
		WITHIN 100 SLIDE 100`)
	sess := cogra.NewSession(
		cogra.WithSlack(1000), // generous slack: only the cap bounds the buffer
		cogra.WithMaxReorderDepth(3),
		cogra.WithDepthPolicy(cogra.Reject))
	sess.Subscribe(q)
	for t := int64(1); t <= 3; t++ {
		sess.Push(cogra.NewEvent("A", t)) // buffered: all within slack
	}
	err := sess.Push(cogra.NewEvent("A", 4)) // buffer full, nothing drains
	fmt.Println("backpressure:", errors.Is(err, cogra.ErrBackpressure))
	if err := sess.Push(cogra.NewEvent("A", 2000)); err != nil {
		// A watermark-advancing event drains the buffer and is admitted.
		fmt.Println(err)
	}
	st, _ := sess.Stats()
	fmt.Println("buffered after drain:", st.ReorderDepth)
	// Output:
	// backpressure: true
	// buffered after drain: 1
}

// ExampleSession_Snapshot checkpoints a live session mid-stream,
// "crashes" it, restores, and feeds the rest of the stream: the
// results are those of a run that never stopped. Restored
// subscriptions have no sinks (code does not survive serialization) —
// re-acquire them with Subscriptions and pull.
func ExampleSession_Snapshot() {
	q := cogra.MustParse(`
		RETURN COUNT(*)
		PATTERN A+
		SEMANTICS skip-till-any-match
		WITHIN 10 SLIDE 10`)
	sess := cogra.NewSession()
	sub, _ := sess.Subscribe(q)
	sess.Push(cogra.NewEvent("A", 1))
	sess.Push(cogra.NewEvent("A", 3)) // two open partial trends in [0,10)

	var checkpoint bytes.Buffer
	if err := sess.Snapshot(&checkpoint); err != nil {
		fmt.Println(err)
		return
	}
	sess.Close() // the "crash": in-flight state beyond the checkpoint is lost

	restored, err := cogra.Restore(bytes.NewReader(checkpoint.Bytes()))
	if err != nil {
		fmt.Println(err)
		return
	}
	restored.Push(cogra.NewEvent("A", 5)) // the suffix, from the cut onward
	restored.Push(cogra.NewEvent("A", 12))
	restored.Close()
	sub = restored.Subscriptions()[sub.ID()]
	for r := range sub.Results() {
		fmt.Println(r)
	}
	// Output:
	// window [0,10): COUNT(*)=7
	// window [10,20): COUNT(*)=1
}

// ExampleWithLatePolicy shows the typed late-event error: beyond-slack
// events fail Push under RejectLate and are matchable with errors.Is.
func ExampleWithLatePolicy() {
	q := cogra.MustParse(`
		RETURN COUNT(*)
		PATTERN A+
		SEMANTICS skip-till-any-match
		WITHIN 100 SLIDE 100`)
	sess := cogra.NewSession(cogra.WithSlack(2), cogra.WithLatePolicy(cogra.RejectLate))
	sess.Subscribe(q)
	sess.Push(cogra.NewEvent("A", 50))
	err := sess.Push(cogra.NewEvent("A", 10)) // 40 ticks late, slack is 2
	fmt.Println("late event rejected:", errors.Is(err, cogra.ErrLateEvent))
	// Output:
	// late event rejected: true
}
