package cogra_test

// Tests for the batch-first, disorder-tolerant data plane (Session
// v2): Push/PushBatch ingest, WithSlack reordering with the late-event
// policies, pull-based Results iterators, typed sentinel errors and
// context cancellation.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	cogra "repro"
	"repro/internal/fuzz/diff"
)

// shuffleBounded returns a copy of events shuffled within blocks of
// the given size (bounded disorder) plus the slack required to repair
// it (diff.ShuffleBounded, shared with the fuzzer's slack oracle).
func shuffleBounded(events []*cogra.Event, block int, seed int64) ([]*cogra.Event, int64) {
	return diff.ShuffleBounded(events, block, seed)
}

// TestSessionSlackDifferential: a stream shuffled within slack K,
// pushed through PushBatch on a WithSlack(K) session, produces
// byte-identical results to the sorted stream pushed through the
// deprecated Process path — for every granularity (plus the
// contiguous wants-all path) and for inline and 4-worker sessions.
func TestSessionSlackDifferential(t *testing.T) {
	events := sessionTestStream(3000)
	shuffled, slack := shuffleBounded(events, 6, 99)
	if slack == 0 {
		t.Fatal("shuffle produced no disorder; test is vacuous")
	}
	for mode, opts := range sessionModes() {
		for name, src := range sessionTestQueries() {
			t.Run(mode+"/"+name, func(t *testing.T) {
				ref := cogra.NewSession(opts...)
				refSub, err := ref.Subscribe(cogra.MustParse(src))
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range events {
					if err := ref.Process(e); err != nil {
						t.Fatal(err)
					}
				}
				if err := ref.Close(); err != nil {
					t.Fatal(err)
				}
				want := refSub.Drain()

				sess := cogra.NewSession(append(opts[:len(opts):len(opts)], cogra.WithSlack(slack))...)
				sub, err := sess.Subscribe(cogra.MustParse(src))
				if err != nil {
					t.Fatal(err)
				}
				if err := sess.PushBatch(shuffled); err != nil {
					t.Fatal(err)
				}
				if err := sess.Close(); err != nil {
					t.Fatal(err)
				}
				got := sub.Drain()

				if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
					t.Errorf("shuffled-with-slack diverges from sorted stream\ngot:  %v\nwant: %v", got, want)
				}
				if len(want) == 0 {
					t.Error("no results; differential test is vacuous")
				}
				st, err := sess.Stats()
				if err != nil {
					t.Fatal(err)
				}
				if st.LateDropped != 0 {
					t.Errorf("dropped %d events within slack", st.LateDropped)
				}
				if st.ReorderPeakDepth == 0 {
					t.Error("reorder peak depth not tracked")
				}
			})
		}
	}
}

// TestSessionSlackZeroMatchesProcess: with slack 0 the new Push
// surface is result-identical to the PR 3 Process path on an in-order
// stream, in both session modes.
func TestSessionSlackZeroMatchesProcess(t *testing.T) {
	events := sessionTestStream(2000)
	src := sessionTestQueries()["type"]
	for mode, opts := range sessionModes() {
		t.Run(mode, func(t *testing.T) {
			want := soloRun(t, src, events)

			sess := cogra.NewSession(append(opts[:len(opts):len(opts)], cogra.WithSlack(0))...)
			sub, err := sess.Subscribe(cogra.MustParse(src))
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range events {
				if err := sess.Push(e); err != nil {
					t.Fatal(err)
				}
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
			if got := sub.Drain(); fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Errorf("slack-0 Push diverges from Process\ngot:  %v\nwant: %v", got, want)
			}
		})
	}
}

// TestSessionPushBatchMatchesProcess: the native batch path produces
// exactly the per-event path's results (no slack configured).
func TestSessionPushBatchMatchesProcess(t *testing.T) {
	events := sessionTestStream(2000)
	src := sessionTestQueries()["mixed"]
	for mode, opts := range sessionModes() {
		t.Run(mode, func(t *testing.T) {
			want := soloRun(t, src, events) // per-event Process reference

			sess := cogra.NewSession(opts...)
			sub, err := sess.Subscribe(cogra.MustParse(src))
			if err != nil {
				t.Fatal(err)
			}
			// Uneven batch sizes cross every internal boundary.
			for i := 0; i < len(events); {
				n := 1 + (i*7)%97
				if i+n > len(events) {
					n = len(events) - i
				}
				if err := sess.PushBatch(events[i : i+n]); err != nil {
					t.Fatal(err)
				}
				i += n
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
			if got := sub.Drain(); fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Errorf("PushBatch diverges from Process\ngot:  %v\nwant: %v", got, want)
			}
		})
	}
}

// TestSessionLatePolicies: beyond-slack events are dropped and counted
// under DropLate (the default) and fail Push with ErrLateEvent under
// RejectLate; in both cases the results equal a run without the
// straggler.
func TestSessionLatePolicies(t *testing.T) {
	src := `RETURN COUNT(*) PATTERN A+ WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`
	mk := func() []*cogra.Event {
		var out []*cogra.Event
		for i, tm := range []int64{1, 2, 8, 9, 22, 23} {
			e := cogra.NewEvent("A", tm).WithSym("k", "g")
			e.ID = int64(i + 1)
			out = append(out, e)
		}
		return out
	}
	straggler := cogra.NewEvent("A", 2).WithSym("k", "g") // 20 units late at t=22

	want := soloRun(t, src, mk())

	t.Run("drop", func(t *testing.T) {
		sess := cogra.NewSession(cogra.WithSlack(3))
		sub, err := sess.Subscribe(cogra.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		events := mk()
		if err := sess.PushBatch(events[:5]); err != nil {
			t.Fatal(err)
		}
		if err := sess.Push(straggler.Clone()); err != nil {
			t.Fatalf("DropLate surfaced an error: %v", err)
		}
		if err := sess.Push(events[5]); err != nil {
			t.Fatal(err)
		}
		st, err := sess.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.LateDropped != 1 {
			t.Errorf("LateDropped = %d, want 1", st.LateDropped)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		if got := sub.Drain(); fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Errorf("dropped straggler changed results\ngot:  %v\nwant: %v", got, want)
		}
	})

	t.Run("reject", func(t *testing.T) {
		sess := cogra.NewSession(cogra.WithSlack(3), cogra.WithLatePolicy(cogra.RejectLate))
		sub, err := sess.Subscribe(cogra.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		events := mk()
		if err := sess.PushBatch(events[:5]); err != nil {
			t.Fatal(err)
		}
		if err := sess.Push(straggler.Clone()); !errors.Is(err, cogra.ErrLateEvent) {
			t.Fatalf("RejectLate error = %v, want ErrLateEvent", err)
		}
		// The session stays usable after the rejection.
		if err := sess.Push(events[5]); err != nil {
			t.Fatal(err)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		if got := sub.Drain(); fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Errorf("rejected straggler changed results\ngot:  %v\nwant: %v", got, want)
		}
	})
}

// TestSessionTypedErrors: every lifecycle failure is matchable with
// errors.Is against the public sentinels, in both session modes.
func TestSessionTypedErrors(t *testing.T) {
	src := `RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`
	for mode, opts := range sessionModes() {
		t.Run(mode, func(t *testing.T) {
			sess := cogra.NewSession(opts...)
			sub, err := sess.Subscribe(cogra.MustParse(src))
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.Push(cogra.NewEvent("A", 5)); err != nil {
				t.Fatal(err)
			}
			sub.Unsubscribe()
			if sub.Err() != nil {
				t.Fatal(sub.Err())
			}
			sub.Unsubscribe()
			if !errors.Is(sub.Err(), cogra.ErrNotHosted) {
				t.Errorf("double Unsubscribe err = %v, want ErrNotHosted", sub.Err())
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
			if err := sess.Close(); !errors.Is(err, cogra.ErrClosed) {
				t.Errorf("double Close err = %v, want ErrClosed", err)
			}
			if err := sess.Push(cogra.NewEvent("A", 9)); !errors.Is(err, cogra.ErrClosed) {
				t.Errorf("Push after Close err = %v, want ErrClosed", err)
			}
			if err := sess.PushBatch([]*cogra.Event{cogra.NewEvent("A", 9)}); !errors.Is(err, cogra.ErrClosed) {
				t.Errorf("PushBatch after Close err = %v, want ErrClosed", err)
			}
			if _, err := sess.Subscribe(cogra.MustParse(src)); !errors.Is(err, cogra.ErrClosed) {
				t.Errorf("Subscribe after Close err = %v, want ErrClosed", err)
			}
			sub.Unsubscribe()
			if !errors.Is(sub.Err(), cogra.ErrClosed) {
				t.Errorf("Unsubscribe after Close err = %v, want ErrClosed", sub.Err())
			}
		})
	}

	// An out-of-order Push fails SYNCHRONOUSLY with ErrLateEvent in
	// both modes (the parallel router is asynchronous, so the session
	// checks ordering itself), the bad event is not ingested, and the
	// session remains usable.
	for mode, opts := range sessionModes() {
		t.Run("late/"+mode, func(t *testing.T) {
			sess := cogra.NewSession(opts...)
			sub, err := sess.Subscribe(cogra.MustParse(src))
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.Push(cogra.NewEvent("A", 5)); err != nil {
				t.Fatal(err)
			}
			if err := sess.Push(cogra.NewEvent("A", 1)); !errors.Is(err, cogra.ErrLateEvent) {
				t.Errorf("out-of-order Push err = %v, want ErrLateEvent", err)
			}
			if err := sess.PushBatch([]*cogra.Event{cogra.NewEvent("A", 6), cogra.NewEvent("A", 2)}); !errors.Is(err, cogra.ErrLateEvent) {
				t.Errorf("out-of-order PushBatch err = %v, want ErrLateEvent", err)
			}
			if err := sess.Push(cogra.NewEvent("A", 15)); err != nil {
				t.Fatalf("session unusable after rejected event: %v", err)
			}
			if err := sess.Close(); err != nil {
				t.Fatalf("Close after rejected events: %v", err)
			}
			// Ingested: t=5, t=6 (batch prefix), t=15 — windows [0,10) and [10,20).
			if got := len(sub.Drain()); got != 2 {
				t.Errorf("results = %d windows, want 2", got)
			}
		})
	}
}

// TestSessionSlackStampsTieOrder: events without source-assigned IDs
// (the common case — NewEvent and CSV rows carry ID 0) keep their
// arrival order through the slack buffer even on equal time stamps,
// so a WithSlack session over an already-ordered stream is
// result-identical to a slack-less one. Regression test: unstamped
// heap ties pop in arbitrary order.
func TestSessionSlackStampsTieOrder(t *testing.T) {
	src := `
		RETURN COUNT(*)
		PATTERN M+
		SEMANTICS skip-till-any-match
		WHERE [k] AND M.rate < NEXT(M).rate
		GROUP-BY k
		WITHIN 16 SLIDE 16`
	mk := func() []*cogra.Event {
		rng := rand.New(rand.NewSource(5))
		var out []*cogra.Event
		for i := 0; i < 200; i++ {
			// Runs of 4 equal time stamps; rates vary within each run,
			// so the NEXT() adjacency is sensitive to tie order.
			out = append(out, cogra.NewEvent("M", int64(i/4)).
				WithSym("k", "g").
				WithNum("rate", float64(rng.Intn(40))))
		}
		return out
	}
	run := func(opts ...cogra.SessionOption) []cogra.Result {
		sess := cogra.NewSession(opts...)
		sub, err := sess.Subscribe(cogra.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.PushBatch(mk()); err != nil {
			t.Fatal(err)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		return sub.Drain()
	}
	want := run()
	got := run(cogra.WithSlack(4))
	if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
		t.Errorf("slack buffer permuted ID-0 ties\ngot:  %v\nwant: %v", got, want)
	}
	if len(want) == 0 {
		t.Error("no results; test is vacuous")
	}
}

// TestSessionResultsPull: Results() is a single-use pull iterator —
// consumed results are gone, an early break keeps the rest buffered,
// and after Close the remaining windows surface.
func TestSessionResultsPull(t *testing.T) {
	src := `RETURN COUNT(*) PATTERN A+ WHERE [k] GROUP-BY k WITHIN 10 SLIDE 10`
	sess := cogra.NewSession()
	sub, err := sess.Subscribe(cogra.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	// Three groups per window over four windows.
	for tm := int64(0); tm < 40; tm++ {
		for g := 0; g < 3; g++ {
			e := cogra.NewEvent("A", tm).WithSym("k", fmt.Sprintf("g%d", g))
			if err := sess.Push(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Three windows have closed ([0,10), [10,20), [20,30)): 9 results.
	var first []cogra.Result
	for r := range sub.Results() {
		first = append(first, r)
		if len(first) == 4 {
			break // the rest must stay buffered
		}
	}
	if len(first) != 4 {
		t.Fatalf("pulled %d results, want 4", len(first))
	}
	var second []cogra.Result
	for r := range sub.Results() {
		second = append(second, r)
	}
	if len(first)+len(second) != 9 {
		t.Fatalf("pulled %d + %d results before Close, want 9", len(first), len(second))
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	var tail []cogra.Result
	for r := range sub.Results() {
		tail = append(tail, r)
	}
	if len(tail) != 3 { // the flushed [30,40) window
		t.Fatalf("pulled %d results after Close, want 3", len(tail))
	}
	if n := len(sub.Drain()); n != 0 {
		t.Errorf("%d results left after full pull", n)
	}

	// The combined pulls equal one undisturbed solo run.
	var events []*cogra.Event
	for tm := int64(0); tm < 40; tm++ {
		for g := 0; g < 3; g++ {
			events = append(events, cogra.NewEvent("A", tm).WithSym("k", fmt.Sprintf("g%d", g)))
		}
	}
	want := soloRun(t, src, events)
	got := append(append(first, second...), tail...)
	if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
		t.Errorf("pulled results diverge from solo run\ngot:  %v\nwant: %v", got, want)
	}
}

// TestSessionSinkStreams: WithSink streams results as they emit and
// leaves nothing for the pull surface.
func TestSessionSinkStreams(t *testing.T) {
	src := `RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`
	var sunk []cogra.Result
	sess := cogra.NewSession()
	sub, err := sess.Subscribe(cogra.MustParse(src),
		cogra.WithSink(cogra.SinkFunc(func(r cogra.Result) { sunk = append(sunk, r) })))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.PushBatch([]*cogra.Event{
		cogra.NewEvent("A", 1), cogra.NewEvent("A", 2), cogra.NewEvent("A", 15),
	}); err != nil {
		t.Fatal(err)
	}
	if len(sunk) != 1 {
		t.Fatalf("sink saw %d results before Close, want 1", len(sunk))
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sunk) != 2 {
		t.Fatalf("sink saw %d results, want 2", len(sunk))
	}
	for range sub.Results() {
		t.Fatal("Results yielded despite an installed sink")
	}
}

// TestSessionStrictRouting: once events have flowed in a parallel
// session, a StrictRouting subscription whose partition keys do not
// cover the routing attributes is rejected with ErrFrozenRouting;
// without the option it is hosted on the fallback worker, and inline
// sessions (no routing) accept it either way.
func TestSessionStrictRouting(t *testing.T) {
	patientQ := `RETURN COUNT(*) PATTERN A+ WHERE [patient] GROUP-BY patient WITHIN 10 SLIDE 10`
	wardQ := `RETURN COUNT(*) PATTERN A+ WHERE [ward] GROUP-BY ward WITHIN 10 SLIDE 10`
	ev := func(tm int64) *cogra.Event {
		return cogra.NewEvent("A", tm).WithSym("patient", "p0").WithSym("ward", "w0")
	}

	t.Run("parallel", func(t *testing.T) {
		sess := cogra.NewSession(cogra.WithWorkers(4))
		if _, err := sess.Subscribe(cogra.MustParse(patientQ)); err != nil {
			t.Fatal(err)
		}
		// Before any event the routing is fluid: strict subscribes are
		// fine (the routing recomputes over the new fleet).
		early, err := sess.Subscribe(cogra.MustParse(patientQ), cogra.StrictRouting())
		if err != nil {
			t.Fatalf("strict subscribe before first event: %v", err)
		}
		early.Unsubscribe()
		if err := early.Err(); err != nil {
			t.Fatal(err)
		}
		if err := sess.Push(ev(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Subscribe(cogra.MustParse(wardQ), cogra.StrictRouting()); !errors.Is(err, cogra.ErrFrozenRouting) {
			t.Errorf("strict locality-breaking subscribe err = %v, want ErrFrozenRouting", err)
		}
		// Covering queries still subscribe strictly mid-stream.
		if _, err := sess.Subscribe(cogra.MustParse(patientQ), cogra.StrictRouting()); err != nil {
			t.Errorf("strict covering subscribe rejected: %v", err)
		}
		// Without StrictRouting the same query is hosted (fallback).
		if _, err := sess.Subscribe(cogra.MustParse(wardQ)); err != nil {
			t.Errorf("fallback subscribe rejected: %v", err)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("inline", func(t *testing.T) {
		sess := cogra.NewSession()
		if _, err := sess.Subscribe(cogra.MustParse(patientQ)); err != nil {
			t.Fatal(err)
		}
		if err := sess.Push(ev(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Subscribe(cogra.MustParse(wardQ), cogra.StrictRouting()); err != nil {
			t.Errorf("inline strict subscribe rejected: %v", err)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// cancellingSource yields events and cancels a context after a fixed
// number of Next calls — a source that goes quiet mid-stream.
type cancellingSource struct {
	events   []*cogra.Event
	pos      int
	cancelAt int
	cancel   context.CancelFunc
}

func (s *cancellingSource) Next() (*cogra.Event, bool) {
	if s.pos == s.cancelAt {
		s.cancel()
	}
	if s.pos >= len(s.events) {
		return nil, false
	}
	e := s.events[s.pos]
	s.pos++
	return e, true
}

// TestSessionRunContext: cancellation stops the run with the context's
// error at a consistent position; the session remains usable and a
// subsequent run completes the stream with the results of an
// uninterrupted run.
func TestSessionRunContext(t *testing.T) {
	events := sessionTestStream(2000)
	src := sessionTestQueries()["type"]
	want := soloRun(t, src, events)
	for mode, opts := range sessionModes() {
		t.Run(mode, func(t *testing.T) {
			sess := cogra.NewSession(opts...)
			sub, err := sess.Subscribe(cogra.MustParse(src))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			srcIter := &cancellingSource{events: events, cancelAt: len(events) / 2, cancel: cancel}
			if err := sess.RunContext(ctx, srcIter); !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext err = %v, want context.Canceled", err)
			}
			if srcIter.pos >= len(events) {
				t.Fatal("source fully consumed despite cancellation")
			}
			// Stats after cancellation observe the synced prefix.
			st, err := sess.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Events == 0 || st.Events >= int64(len(events)) {
				t.Errorf("events after cancel = %d", st.Events)
			}
			// Resume with a fresh context and finish the stream.
			if err := sess.RunContext(context.Background(), cogra.FromSlice(events[srcIter.pos:])); err != nil {
				t.Fatal(err)
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
			if got := sub.Drain(); fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Errorf("cancel+resume diverges from uninterrupted run\ngot:  %v\nwant: %v", got, want)
			}
		})
	}
}
