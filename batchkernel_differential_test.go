package cogra_test

// Differential tests for the columnar batch kernels and the routed
// executor groups, extending the repo's differential spine:
//
//   - batch execution (PushBatch, type-partitioned runs through the
//     run kernels) is byte-identical to event-at-a-time Push across
//     all three granularities (plus the contiguous wants-all path) ×
//     {inline, 4 workers} × {slack, intern eviction, catalog
//     compaction}, on a run-shaped stream whose type runs carry
//     equal-timestamp ties and straddle window boundaries;
//   - a k-group session produces byte-identical results to the
//     single-group default (groups are full-stream workers — routing
//     subscribers across more of them cannot change results), and the
//     group fleet grows by partition-key signature and retires with
//     its last subscriber;
//   - snapshot/restore across a mid-batch cut — between two batches
//     that split an equal-time, same-type run — is byte-identical to
//     the undisturbed run, with the executor-group topology restored.
//
// Runs under -race in CI like the rest of the spine.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	cogra "repro"
	"repro/internal/fuzz/diff"
)

// runShapedStream emits the session test stream reshaped into type
// runs: bursts of 3–8 events of one type, with timestamps that tie
// within a burst (dense equal-time runs), advance, or jump far enough
// mid-burst to cross window boundaries. This is the adversarial shape
// for the batch kernels — dispatch buckets consecutive same-type
// events into runs, so the bursts produce long runs that the ties and
// jumps then split across equal-time groups and window flushes.
func runShapedStream(n int) []*cogra.Event {
	rng := rand.New(rand.NewSource(41))
	rates := [3]float64{60, 70, 80}
	out := make([]*cogra.Event, 0, n)
	tm := int64(0)
	for len(out) < n {
		p := rng.Intn(3)
		patient := fmt.Sprintf("p%d", p)
		kind := rng.Intn(10)
		burst := 3 + rng.Intn(6)
		for j := 0; j < burst && len(out) < n; j++ {
			ward := fmt.Sprintf("w%d", rng.Intn(2))
			var ev *cogra.Event
			switch {
			case kind < 3:
				ev = cogra.NewEvent("A", tm).WithSym("patient", patient).
					WithSym("ward", ward).WithNum("v", float64(rng.Intn(100)))
			case kind < 5:
				ev = cogra.NewEvent("B", tm).WithSym("patient", patient).
					WithSym("ward", ward).WithNum("v", float64(rng.Intn(100)))
			case kind < 8:
				rates[p] += float64(rng.Intn(7)) - 3
				ev = cogra.NewEvent("M", tm).WithSym("patient", patient).
					WithSym("ward", ward).WithNum("rate", rates[p])
			default:
				ev = cogra.NewEvent("X", tm).WithSym("patient", patient).
					WithSym("ward", ward).WithNum("noise", 1)
			}
			ev.ID = int64(len(out) + 1)
			out = append(out, ev)
			switch rng.Intn(8) {
			case 0, 1, 2, 3: // tie: the run grows within one timestamp
			case 7:
				tm += 20 + int64(rng.Intn(60)) // jump across a window boundary mid-burst
			default:
				tm++
			}
		}
	}
	return out
}

// assertRunShaped fails unless the stream actually carries the shapes
// the kernel differentials claim to cover: equal-time same-type runs
// of meaningful length, and same-type runs whose timestamps cross a
// window boundary (the queries' smallest slide is 32).
func assertRunShaped(t *testing.T, events []*cogra.Event) {
	t.Helper()
	maxTieRun, straddles, run := 0, 0, 1
	for i := 1; i < len(events); i++ {
		if events[i].Type == events[i-1].Type {
			if events[i].Time == events[i-1].Time {
				run++
			} else {
				if events[i].Time/32 != events[i-1].Time/32 {
					straddles++
				}
				run = 1
			}
		} else {
			run = 1
		}
		if run > maxTieRun {
			maxTieRun = run
		}
	}
	if maxTieRun < 3 {
		t.Fatalf("stream has no equal-time type run longer than %d; tie coverage is vacuous", maxTieRun)
	}
	if straddles == 0 {
		t.Fatal("no type run straddles a window boundary; straddle coverage is vacuous")
	}
}

// kernelRun feeds one query (plus optional compaction churn) through a
// session: event-at-a-time when batch is false, dispatch-sized batches
// when true. churnAt must be a multiple of the batch size so both
// paths unsubscribe the churn query at the same stream position.
func kernelRun(t *testing.T, opts []cogra.SessionOption, src string, events []*cogra.Event, batch bool, churnAt int) []cogra.Result {
	t.Helper()
	sess := cogra.NewSession(opts...)
	sub, err := sess.Subscribe(cogra.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	var extra *cogra.Subscription
	if churnAt >= 0 {
		if extra, err = sess.Subscribe(cogra.MustParse(sessionTestQueries()["mixed"])); err != nil {
			t.Fatal(err)
		}
	}
	const chunk = 256
	for i := 0; i < len(events); i += chunk {
		if extra != nil && i >= churnAt {
			extra.Unsubscribe()
			if err := extra.Err(); err != nil {
				t.Fatal(err)
			}
			extra = nil
		}
		end := min(i+chunk, len(events))
		if batch {
			if err := sess.PushBatch(events[i:end]); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, e := range events[i:end] {
				if err := sess.Push(e); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	return sub.Drain()
}

// TestSessionBatchKernelDifferential pins the run kernels: batch
// execution equals event-at-a-time for every granularity × session
// mode × bounded-state variant, on the run-shaped stream.
func TestSessionBatchKernelDifferential(t *testing.T) {
	base := runShapedStream(3000)
	assertRunShaped(t, base)
	shuffled, slack := shuffleBounded(base, 6, 7)
	if slack == 0 {
		t.Fatal("shuffle produced no disorder; slack variant is vacuous")
	}
	variants := map[string]struct {
		opts    []cogra.SessionOption
		events  []*cogra.Event
		churnAt int
	}{
		"plain":      {nil, base, -1},
		"slack":      {[]cogra.SessionOption{cogra.WithSlack(slack)}, shuffled, -1},
		"eviction":   {[]cogra.SessionOption{cogra.WithInternEviction()}, base, -1},
		"compaction": {nil, base, 1024},
	}
	for mode, mopts := range sessionModes() {
		for vname, v := range variants {
			for qname, src := range sessionTestQueries() {
				t.Run(mode+"/"+vname+"/"+qname, func(t *testing.T) {
					opts := append(mopts[:len(mopts):len(mopts)], v.opts...)
					want := kernelRun(t, opts, src, v.events, false, v.churnAt)
					got := kernelRun(t, opts, src, v.events, true, v.churnAt)
					if !diff.Equal(got, want) {
						t.Errorf("batch kernels diverge from event-at-a-time\n%s", diff.Diff(got, want))
					}
					if len(want) == 0 {
						t.Error("no results; differential test is vacuous")
					}
				})
			}
		}
	}
}

// groupQueries returns the mid-stream subscribers of the executor
// group tests: two ward-partitioned queries (one partition-key
// signature, so one group hosts both) and one unpartitioned global
// query (its own signature). Subscribed after routing froze on
// patient, none covers the routing attributes, so all fall back to
// executor groups.
func groupQueries() map[string]string {
	return map[string]string{
		"ward-seq": `
			RETURN COUNT(*), SUM(A.v)
			PATTERN (SEQ(A+, B))+
			SEMANTICS skip-till-any-match
			WHERE [ward] GROUP-BY ward
			WITHIN 64 SLIDE 32`,
		"ward-trend": `
			RETURN COUNT(*), MAX(M.rate)
			PATTERN M+
			SEMANTICS skip-till-any-match
			WHERE [ward] AND M.rate < NEXT(M).rate
			GROUP-BY ward
			WITHIN 64 SLIDE 64`,
		"global": `
			RETURN COUNT(*)
			PATTERN M+
			SEMANTICS contiguous
			WITHIN 64 SLIDE 64`,
	}
}

// groupRun drives one executor-group scenario: a patient-partitioned
// resident freezes the routing over a prefix, the group queries join
// mid-stream, half the stream flows, one ward query leaves, the rest
// flows. Returns every subscriber's results plus the group counts
// observed mid-stream and after all group subscribers left.
func groupRun(t *testing.T, opts []cogra.SessionOption, events []*cogra.Event) (map[string][]cogra.Result, int, int) {
	t.Helper()
	sess := cogra.NewSession(opts...)
	subs := map[string]*cogra.Subscription{}
	var err error
	if subs["resident"], err = sess.Subscribe(cogra.MustParse(sessionTestQueries()["type"])); err != nil {
		t.Fatal(err)
	}
	if err := sess.PushBatch(events[:800]); err != nil {
		t.Fatal(err)
	}
	for name, src := range groupQueries() {
		if subs[name], err = sess.Subscribe(cogra.MustParse(src)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.PushBatch(events[800:1600]); err != nil {
		t.Fatal(err)
	}
	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	midGroups := st.ExecutorGroups
	results := map[string][]cogra.Result{}
	results["ward-trend"] = subs["ward-trend"].Unsubscribe()
	if err := subs["ward-trend"].Err(); err != nil {
		t.Fatal(err)
	}
	if err := sess.PushBatch(events[1600:]); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ward-seq", "global"} {
		results[name] = subs[name].Unsubscribe()
		if err := subs[name].Err(); err != nil {
			t.Fatal(err)
		}
	}
	st, err = sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	finalGroups := st.ExecutorGroups
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	results["resident"] = subs["resident"].Drain()
	return results, midGroups, finalGroups
}

// TestExecutorGroupsDifferential pins group routing: the same churn
// schedule on an inline session, a 4-worker single-group session and a
// 4-worker 3-group session produces byte-identical results for every
// subscriber; the 3-group fleet clusters the ward queries into one
// group and the global query into another, and every group retires
// with its last subscriber.
func TestExecutorGroupsDifferential(t *testing.T) {
	events := runShapedStream(2400)
	inline, _, _ := groupRun(t, nil, events)
	single, sMid, sFinal := groupRun(t, []cogra.SessionOption{cogra.WithWorkers(4)}, events)
	routed, rMid, rFinal := groupRun(t, []cogra.SessionOption{cogra.WithWorkers(4), cogra.WithExecutorGroups(3)}, events)

	for name := range inline {
		if len(inline[name]) == 0 {
			t.Errorf("%s: no results; differential test is vacuous", name)
		}
		if !diff.Equal(single[name], inline[name]) {
			t.Errorf("%s: single-group diverges from inline\n%s", name, diff.Diff(single[name], inline[name]))
		}
		if !diff.Equal(routed[name], single[name]) {
			t.Errorf("%s: 3-group diverges from single-group\n%s", name, diff.Diff(routed[name], single[name]))
		}
	}
	if sMid != 1 {
		t.Errorf("single-group session hosts %d groups mid-stream, want 1", sMid)
	}
	if rMid != 2 {
		t.Errorf("3-group session hosts %d groups mid-stream, want 2 (ward signature + global signature)", rMid)
	}
	if sFinal != 0 || rFinal != 0 {
		t.Errorf("groups outlive their subscribers: single %d, routed %d, want 0", sFinal, rFinal)
	}
}

// groupSnapRun is groupRun with a snapshot/restore cut: at event
// cutAt (-1: never) — chosen inside an equal-time, same-type run, so
// the cut splits a dispatch run between two batches — it snapshots,
// discards the session, restores and continues. Returns every
// subscriber's results plus the final stats rendering.
func groupSnapRun(t *testing.T, events []*cogra.Event, cutAt int) (map[string][]cogra.Result, string) {
	t.Helper()
	sess := cogra.NewSession(cogra.WithWorkers(4), cogra.WithExecutorGroups(3))
	names := []string{"resident", "ward-seq", "ward-trend", "global"}
	ids := map[string]int{}
	subs := map[string]*cogra.Subscription{}
	var err error
	if subs["resident"], err = sess.Subscribe(cogra.MustParse(sessionTestQueries()["type"])); err != nil {
		t.Fatal(err)
	}
	if err := sess.PushBatch(events[:600]); err != nil {
		t.Fatal(err)
	}
	for name, src := range groupQueries() {
		if subs[name], err = sess.Subscribe(cogra.MustParse(src)); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range names {
		ids[name] = subs[name].ID()
	}
	for i := 600; i < len(events); {
		end := min(i+256, len(events))
		if cutAt > i && cutAt < end {
			end = cutAt
		}
		if err := sess.PushBatch(events[i:end]); err != nil {
			t.Fatal(err)
		}
		i = end
		if i == cutAt {
			var buf bytes.Buffer
			if err := sess.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			before, err := sess.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if before.ExecutorGroups != 2 {
				t.Fatalf("snapshot cut sees %d executor groups, want 2", before.ExecutorGroups)
			}
			sess.Close() // the original "crashes"; discard its tail
			if sess, err = cogra.Restore(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			after, err := sess.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%+v", after) != fmt.Sprintf("%+v", before) {
				t.Fatalf("stats not continuous across restore\nbefore: %+v\nafter:  %+v", before, after)
			}
			all := sess.Subscriptions()
			for _, name := range names {
				if ids[name] >= len(all) || !all[ids[name]].Active() {
					t.Fatalf("restored session lost subscription %s", name)
				}
				subs[name] = all[ids[name]]
			}
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	results := map[string][]cogra.Result{}
	for _, name := range names {
		results[name] = subs[name].Drain()
	}
	return results, fmt.Sprintf("%+v", st)
}

// TestSnapshotRestoreExecutorGroups pins checkpoint/restore for the
// group topology across a mid-batch cut: the cut lands inside an
// equal-time, same-type run (splitting it between two batches), the
// restored session rebuilds both executor groups, and results AND
// final stats equal the undisturbed run byte-for-byte.
func TestSnapshotRestoreExecutorGroups(t *testing.T) {
	events := runShapedStream(2400)
	cutAt := -1
	for i := 1000; i < 1800; i++ {
		if events[i].Time == events[i-1].Time && events[i].Type == events[i-1].Type {
			cutAt = i
			break
		}
	}
	if cutAt < 0 {
		t.Fatal("no equal-time same-type run to cut; mid-batch coverage is vacuous")
	}
	want, wantStats := groupSnapRun(t, events, -1)
	got, gotStats := groupSnapRun(t, events, cutAt)
	for name := range want {
		if len(want[name]) == 0 {
			t.Errorf("%s: no results; differential test is vacuous", name)
		}
		if !diff.Equal(got[name], want[name]) {
			t.Errorf("%s: restored run diverges from undisturbed run\n%s", name, diff.Diff(got[name], want[name]))
		}
	}
	if gotStats != wantStats {
		t.Errorf("final stats diverge\ngot:  %s\nwant: %s", gotStats, wantStats)
	}
}
