// Quickstart: the running example of the paper (Figure 2). The
// pattern (SEQ(A+, B))+ is evaluated over the stream
// a1 b2 a3 a4 c5 b6 a7 b8 under all three event matching semantics;
// COGRA counts 43 trends under skip-till-any-match, 8 under
// skip-till-next-match and 2 under contiguous — without constructing
// a single trend. One Session hosts all three queries and the stream
// is pushed once (batch-first ingest), then each subscription's
// results are pulled.
package main

import (
	"fmt"
	"log"

	cogra "repro"
)

func main() {
	stream := []*cogra.Event{
		cogra.NewEvent("A", 1),
		cogra.NewEvent("B", 2),
		cogra.NewEvent("A", 3),
		cogra.NewEvent("A", 4),
		cogra.NewEvent("C", 5), // irrelevant: skipped by ANY/NEXT, resets CONT
		cogra.NewEvent("B", 6),
		cogra.NewEvent("A", 7),
		cogra.NewEvent("B", 8),
	}

	semantics := []string{
		"skip-till-any-match", "skip-till-next-match", "contiguous",
	}
	sess := cogra.NewSession()
	subs := make([]*cogra.Subscription, len(semantics))
	for i, sem := range semantics {
		q, err := cogra.Parse(fmt.Sprintf(`
			RETURN COUNT(*)
			PATTERN (SEQ(A+, B))+
			SEMANTICS %s
			WITHIN 100 SLIDE 100`, sem))
		if err != nil {
			log.Fatal(err)
		}
		if subs[i], err = sess.Subscribe(q); err != nil {
			log.Fatal(err)
		}
	}
	if err := sess.PushBatch(stream); err != nil {
		log.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	for i, sub := range subs {
		for r := range sub.Results() {
			fmt.Printf("%-22s granularity=%-8s %s\n", semantics[i], sub.Plan().Granularity, r)
		}
	}
}
