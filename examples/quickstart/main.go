// Quickstart: the running example of the paper (Figure 2). The
// pattern (SEQ(A+, B))+ is evaluated over the stream
// a1 b2 a3 a4 c5 b6 a7 b8 under all three event matching semantics;
// COGRA counts 43 trends under skip-till-any-match, 8 under
// skip-till-next-match and 2 under contiguous — without constructing
// a single trend.
package main

import (
	"fmt"
	"log"

	cogra "repro"
)

func main() {
	stream := []*cogra.Event{
		cogra.NewEvent("A", 1),
		cogra.NewEvent("B", 2),
		cogra.NewEvent("A", 3),
		cogra.NewEvent("A", 4),
		cogra.NewEvent("C", 5), // irrelevant: skipped by ANY/NEXT, resets CONT
		cogra.NewEvent("B", 6),
		cogra.NewEvent("A", 7),
		cogra.NewEvent("B", 8),
	}

	for _, semantics := range []string{
		"skip-till-any-match", "skip-till-next-match", "contiguous",
	} {
		q, err := cogra.Parse(fmt.Sprintf(`
			RETURN COUNT(*)
			PATTERN (SEQ(A+, B))+
			SEMANTICS %s
			WITHIN 100 SLIDE 100`, semantics))
		if err != nil {
			log.Fatal(err)
		}
		plan, err := cogra.Compile(q)
		if err != nil {
			log.Fatal(err)
		}
		eng := cogra.NewEngine(plan)
		for _, e := range stream {
			if err := eng.Process(e.Clone()); err != nil {
				log.Fatal(err)
			}
		}
		for _, r := range eng.Close() {
			fmt.Printf("%-22s granularity=%-8s %s\n", semantics, plan.Granularity, r)
		}
	}
}
