// Healthcare analytics: query q1 of the paper. Cardiac arrhythmia
// monitoring detects contiguously increasing heart-rate trends during
// passive activities per intensive-care patient, reporting the minimal
// and maximal rate in a 10-minute window sliding every 30 seconds.
// The contiguous semantics selects the pattern granularity: COGRA
// keeps two aggregates and the last matched event per patient,
// regardless of the stream rate. Results stream through a Sink as
// each window closes.
package main

import (
	"fmt"
	"log"

	cogra "repro"
	"repro/internal/gen"
)

func main() {
	q, err := cogra.Parse(`
		RETURN patient, MIN(M.rate), MAX(M.rate), COUNT(*)
		PATTERN Measurement M+
		SEMANTICS contiguous
		WHERE [patient] AND M.rate < NEXT(M).rate AND M.activity = passive
		GROUP-BY patient
		WITHIN 10 minutes SLIDE 30 seconds`)
	if err != nil {
		log.Fatal(err)
	}

	// One hour of measurements for four intensive-care patients.
	events := gen.Activity(gen.ActivityConfig{
		Seed: 42, Events: 3600, Persons: 4, RunLength: 8,
	})

	sess := cogra.NewSession()
	shown := 0
	sub, err := sess.Subscribe(q,
		cogra.WithSink(cogra.SinkFunc(func(r cogra.Result) {
			if shown < 12 { // print the first windows only
				fmt.Println(r)
				shown++
			}
		})))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sub.Plan())
	for _, e := range events {
		if err := sess.Push(e); err != nil {
			log.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	st, err := sess.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("...\nprocessed %d measurements; peak state %d bytes (pattern granularity is O(1) per sub-stream)\n",
		st.Events, st.PeakBytes)
}
