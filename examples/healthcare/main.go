// Healthcare analytics: query q1 of the paper. Cardiac arrhythmia
// monitoring detects contiguously increasing heart-rate trends during
// passive activities per intensive-care patient, reporting the minimal
// and maximal rate in a 10-minute window sliding every 30 seconds.
// The contiguous semantics selects the pattern granularity: COGRA
// keeps two aggregates and the last matched event per patient,
// regardless of the stream rate.
package main

import (
	"fmt"
	"log"

	cogra "repro"
	"repro/internal/gen"
)

func main() {
	q, err := cogra.Parse(`
		RETURN patient, MIN(M.rate), MAX(M.rate), COUNT(*)
		PATTERN Measurement M+
		SEMANTICS contiguous
		WHERE [patient] AND M.rate < NEXT(M).rate AND M.activity = passive
		GROUP-BY patient
		WITHIN 10 minutes SLIDE 30 seconds`)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := cogra.Compile(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)

	// One hour of measurements for four intensive-care patients.
	events := gen.Activity(gen.ActivityConfig{
		Seed: 42, Events: 3600, Persons: 4, RunLength: 8,
	})

	var acct cogra.Accountant
	shown := 0
	eng := cogra.NewEngine(plan,
		cogra.WithAccountant(&acct),
		cogra.WithResultCallback(func(r cogra.Result) {
			if shown < 12 { // print the first windows only
				fmt.Println(r)
				shown++
			}
		}))
	for _, e := range events {
		if err := eng.Process(e); err != nil {
			log.Fatal(err)
		}
	}
	eng.Close()
	fmt.Printf("...\nprocessed %d measurements; peak state %d bytes (pattern granularity is O(1) per sub-stream)\n",
		len(events), acct.Peak())
}
