// Multiquery: one stream, many COGRA plans. A hospital monitoring
// deployment runs several standing queries over the same measurement
// stream — dashboards, alerts and audits all at once. Instead of one
// engine pass per query, a shared Session resolves every event once,
// dispatches it only to the queries whose patterns react to its type,
// and drives all sliding windows from a single watermark. (See
// examples/dynamicfleet for changing the query population while the
// stream runs.)
package main

import (
	"fmt"
	"log"
	"math/rand"

	cogra "repro"
)

func main() {
	queries := []struct {
		name string
		src  string
	}{
		{"trend-count", `
			RETURN COUNT(*)
			PATTERN M+
			SEMANTICS skip-till-any-match
			WHERE [patient] AND M.rate < NEXT(M).rate
			GROUP-BY patient
			WITHIN 60 SLIDE 60`},
		{"peak-rate", `
			RETURN COUNT(*), MAX(M.rate)
			PATTERN M+
			SEMANTICS skip-till-any-match
			WHERE [patient]
			GROUP-BY patient
			WITHIN 60 SLIDE 30`},
		{"checkin-pairs", `
			RETURN COUNT(*)
			PATTERN SEQ(C+, M)
			SEMANTICS skip-till-any-match
			WHERE [patient]
			GROUP-BY patient
			WITHIN 120 SLIDE 120`},
		{"steady-runs", `
			RETURN COUNT(*)
			PATTERN M+
			SEMANTICS contiguous
			WHERE [patient]
			GROUP-BY patient
			WITHIN 60 SLIDE 60`},
	}

	sess := cogra.NewSession()
	subs := make([]*cogra.Subscription, 0, len(queries))
	for _, qd := range queries {
		q, err := cogra.Parse(qd.src)
		if err != nil {
			log.Fatalf("%s: %v", qd.name, err)
		}
		sub, err := sess.Subscribe(q)
		if err != nil {
			log.Fatalf("%s: %v", qd.name, err)
		}
		subs = append(subs, sub)
		fmt.Printf("subscribed %-14s granularity=%s\n", qd.name, sub.Plan().Granularity)
	}

	// One synthetic shift of measurements and check-ins for three
	// patients; every event flows through the runtime exactly once.
	rng := rand.New(rand.NewSource(3))
	rates := []float64{62, 71, 80}
	for t := int64(0); t < 240; t++ {
		p := rng.Intn(3)
		patient := fmt.Sprintf("p%d", p)
		if rng.Intn(10) == 0 {
			if err := sess.Push(cogra.NewEvent("C", t).WithSym("patient", patient)); err != nil {
				log.Fatal(err)
			}
			continue
		}
		rates[p] += float64(rng.Intn(7)) - 3
		ev := cogra.NewEvent("M", t).
			WithSym("patient", patient).
			WithNum("rate", rates[p])
		if err := sess.Push(ev); err != nil {
			log.Fatal(err)
		}
	}

	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	for i, sub := range subs {
		for r := range sub.Results() {
			fmt.Printf("%-14s %s\n", queries[i].name, r)
		}
	}
}
