// Algorithmic trading: query q3 of the paper. Within each sector,
// down-trends of company A's price are followed by trends of company
// B whose average price the query reports, under skip-till-any-match —
// local fluctuations are skipped to catch longer, more reliable
// trends. The predicate on adjacent events (A.price > NEXT(A).price)
// makes COGRA select the mixed granularity: A-events are stored for
// predicate evaluation, everything else aggregates per type.
package main

import (
	"fmt"
	"log"

	cogra "repro"
	"repro/internal/gen"
)

func main() {
	q, err := cogra.Parse(`
		RETURN sector, A.company, B.company, AVG(B.price)
		PATTERN SEQ(Stock A+, Stock B+)
		SEMANTICS skip-till-any-match
		WHERE [A.company] AND [B.company] AND A.price > NEXT(A).price
		GROUP-BY sector, A.company, B.company
		WITHIN 90 seconds SLIDE 90 seconds`)
	if err != nil {
		log.Fatal(err)
	}

	// A small market keeps the group list readable and the trend
	// counts within uint64 — under skip-till-any-match the number of
	// trends grows exponentially with the events per window (Table 3),
	// which is precisely why constructing them is hopeless.
	events := gen.Stock(gen.StockConfig{Seed: 7, Events: 600, Companies: 6, Sectors: 2})

	sess := cogra.NewSession()
	sub, err := sess.Subscribe(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sub.Plan())
	if err := sess.PushBatch(events); err != nil {
		log.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	shown, total := 0, 0
	for r := range sub.Results() {
		if shown < 10 {
			fmt.Println(r)
			shown++
		}
		total++
	}
	fmt.Printf("(%d (sector, A, B) groups with detected trend pairs; first %d shown)\n", total, shown)
}
