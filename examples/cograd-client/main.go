// cograd-client: a minimal Go client for a running cograd. It
// subscribes a query for one tenant, pushes a CSV stream as JSON
// batches, then drains the results — printing each result's "text"
// field, which is byte-identical to what an embedded cograql run would
// print for the same stream.
//
// Start a server, then run the client:
//
//	go run ./cmd/cograd -addr :8080 &
//	go run ./examples/cograd-client -addr http://localhost:8080 \
//	    -tenant demo -input stream.csv \
//	    -query 'RETURN COUNT(*) PATTERN SEQ(A+, B) WITHIN 10 SLIDE 10'
//
// With no -input, the client pushes the paper's Figure 2 stream.
//
// -mode splits the flow into phases for scripting (the CI server smoke
// drives a checkpoint/restart cycle this way):
//
//	-mode subscribe          print the new query id on stdout
//	-mode push -from N -to M push events[N:M) of the input
//	-mode drain -id K        print pending result text lines
//	-mode close              end the tenant's stream (flush open windows)
//	-mode run                all of the above in one go (the default)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	cogra "repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "cograd base URL")
	tenant := flag.String("tenant", "demo", "tenant name")
	query := flag.String("query", "RETURN COUNT(*) PATTERN SEQ(A+, B) WITHIN 10 SLIDE 10", "query to subscribe")
	input := flag.String("input", "", "CSV stream to push (empty: the paper's Figure 2 stream)")
	batch := flag.Int("batch", 512, "events per ingest request")
	mode := flag.String("mode", "run", "run | subscribe | push | drain | close")
	from := flag.Int("from", 0, "push: first event index (inclusive)")
	to := flag.Int("to", 0, "push: last event index (exclusive; 0 means end)")
	qid := flag.Int("id", 0, "drain: query id to drain")
	flag.Parse()

	switch *mode {
	case "subscribe":
		id, err := subscribe(*addr, *tenant, *query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(id)
	case "push":
		events, err := loadEvents(*input)
		if err != nil {
			log.Fatal(err)
		}
		hi := *to
		if hi == 0 || hi > len(events) {
			hi = len(events)
		}
		for i := *from; i < hi; i += *batch {
			if _, err := push(*addr, *tenant, events[i:min(i+*batch, hi)]); err != nil {
				log.Fatal(err)
			}
		}
	case "drain":
		results, err := drain(*addr, *tenant, *qid)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			fmt.Println(r.Text)
		}
	case "close":
		if err := post(*addr+"/v1/"+*tenant+"/close", nil, nil); err != nil {
			log.Fatal(err)
		}
	case "run":
		run(*addr, *tenant, *query, *input, *batch)
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}
}

func run(addr, tenant, query, input string, batch int) {
	events, err := loadEvents(input)
	if err != nil {
		log.Fatal(err)
	}

	// Subscribe first: results only cover events pushed after the
	// subscription exists, exactly like an embedded Session.
	id, err := subscribe(addr, tenant, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscribed query %d for tenant %q\n", id, tenant)

	for i := 0; i < len(events); i += batch {
		n, err := push(addr, tenant, events[i:min(i+batch, len(events))])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pushed %d events\n", n)
	}

	// Close the tenant's stream so open windows flush, then drain.
	if err := post(addr+"/v1/"+tenant+"/close", nil, nil); err != nil {
		log.Fatal(err)
	}
	results, err := drain(addr, tenant, id)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(r.Text)
	}
}

func loadEvents(path string) ([]*cogra.Event, error) {
	if path == "" {
		return []*cogra.Event{
			cogra.NewEvent("A", 1), cogra.NewEvent("B", 2),
			cogra.NewEvent("A", 3), cogra.NewEvent("A", 4),
			cogra.NewEvent("C", 5), cogra.NewEvent("B", 6),
			cogra.NewEvent("A", 7), cogra.NewEvent("B", 8),
		}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return cogra.ReadCSV(f)
}

// post sends a JSON body and decodes the JSON reply, turning typed
// error bodies back into Go errors (errors.Is-compatible sentinels).
func post(url string, body, reply any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		return err
	}
	return decodeReply(resp, reply)
}

func decodeReply(resp *http.Response, reply any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var werr server.WireError
		if json.Unmarshal(raw, &werr) == nil && werr.Code != "" {
			return server.DecodeWireError(&werr)
		}
		return fmt.Errorf("http %d: %s", resp.StatusCode, raw)
	}
	if reply == nil {
		return nil
	}
	return json.Unmarshal(raw, reply)
}

func subscribe(addr, tenant, query string) (int, error) {
	var reply struct {
		ID int `json:"id"`
	}
	err := post(addr+"/v1/"+tenant+"/queries", map[string]string{"query": query}, &reply)
	return reply.ID, err
}

func push(addr, tenant string, events []*cogra.Event) (int, error) {
	wire := make([]server.WireEvent, len(events))
	for i, e := range events {
		wire[i] = server.ToWireEvent(e)
	}
	var reply struct {
		Accepted int `json:"accepted"`
	}
	err := post(addr+"/v1/"+tenant+"/events", map[string]any{"events": wire}, &reply)
	return reply.Accepted, err
}

func drain(addr, tenant string, id int) ([]server.WireResult, error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/%s/results?id=%d", addr, tenant, id))
	if err != nil {
		return nil, err
	}
	var reply struct {
		Results []server.WireResult `json:"results"`
		Done    bool                `json:"done"`
	}
	if err := decodeReply(resp, &reply); err != nil {
		return nil, err
	}
	return reply.Results, nil
}
