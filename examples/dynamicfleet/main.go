// Dynamicfleet: the serving-shaped Session API. A monitoring service
// hosts a changing population of queries over one live measurement
// stream: a dashboard query runs from the start, an incident query is
// attached mid-stream when an operator starts investigating, and is
// detached — flushing its windows — when the incident closes, all
// without stopping the stream or disturbing the other queries.
//
// A query subscribed mid-stream reports results from the first window
// it could observe completely (the partial first window is
// suppressed), so its numbers are trustworthy from the first line.
package main

import (
	"fmt"
	"log"
	"math/rand"

	cogra "repro"
)

func main() {
	sess := cogra.NewSession() // cogra.WithWorkers(4) parallelises the same code

	dashboard := mustSubscribe(sess, "dashboard", `
		RETURN COUNT(*), MAX(M.rate)
		PATTERN M+
		SEMANTICS skip-till-any-match
		WHERE [patient]
		GROUP-BY patient
		WITHIN 60 SLIDE 60`)

	// One day of synthetic measurements for three patients.
	rng := rand.New(rand.NewSource(7))
	rates := []float64{62, 71, 80}
	var incident *cogra.Subscription
	for t := int64(0); t < 600; t++ {
		p := rng.Intn(3)
		rates[p] += float64(rng.Intn(7)) - 3
		ev := cogra.NewEvent("M", t).
			WithSym("patient", fmt.Sprintf("p%d", p)).
			WithNum("rate", rates[p])
		if err := sess.Push(ev); err != nil {
			log.Fatal(err)
		}

		switch t {
		case 150:
			// Operator attaches an incident query mid-stream: rising
			// heart-rate trends. Its first report covers the first
			// window starting after t=150.
			incident = mustSubscribe(sess, "incident", `
				RETURN COUNT(*)
				PATTERN M+
				SEMANTICS skip-till-any-match
				WHERE [patient] AND M.rate < NEXT(M).rate
				GROUP-BY patient
				WITHIN 60 SLIDE 60`)
			fmt.Println("t=150: incident query attached")
		case 450:
			// Incident closed: detach the query; its remaining open
			// windows flush here and its engine memory is released.
			fmt.Println("t=450: incident query detached; final windows:")
			for _, r := range incident.Unsubscribe() {
				fmt.Printf("  incident  %v\n", r)
			}
		}
	}

	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	shown, total := 0, 0
	for r := range dashboard.Results() {
		if shown < 4 {
			fmt.Printf("  dashboard %v\n", r)
			shown++
		}
		total++
	}
	fmt.Printf("dashboard observed %d window results end to end (first %d above)\n", total, shown)

	st, err := sess.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session: %d events, %d interned types, %d interned attrs\n",
		st.Events, st.InternedTypes, st.InternedAttrs)
}

func mustSubscribe(sess *cogra.Session, name, src string) *cogra.Subscription {
	sub, err := sess.Subscribe(cogra.MustParse(src))
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return sub
}
