// Dynamicfleet: the serving-shaped Session API. A monitoring service
// hosts a changing population of queries over one live measurement
// stream: a dashboard query runs from the start, an incident query is
// attached mid-stream when an operator starts investigating, and is
// detached — flushing its windows — when the incident closes, all
// without stopping the stream or disturbing the other queries.
//
// A query subscribed mid-stream reports results from the first window
// it could observe completely (the partial first window is
// suppressed), so its numbers are trustworthy from the first line.
//
// The session runs 4 partition workers routed on the dashboard's
// partition attribute (patient). The incident query aggregates by
// ward instead — a partition key that does not cover the frozen
// routing — so the session hosts it on an *executor group*: a
// full-stream worker that sees every event in order. Groups are
// clustered by partition-key signature (a second ward-keyed query
// would share this group; a differently-keyed one would start another,
// up to the WithExecutorGroups cap) and retire with their last
// subscriber, which Stats().ExecutorGroups makes visible below.
package main

import (
	"fmt"
	"log"
	"math/rand"

	cogra "repro"
)

func main() {
	sess := cogra.NewSession(cogra.WithWorkers(4), cogra.WithExecutorGroups(2))

	dashboard := mustSubscribe(sess, "dashboard", `
		RETURN COUNT(*), MAX(M.rate)
		PATTERN M+
		SEMANTICS skip-till-any-match
		WHERE [patient]
		GROUP-BY patient
		WITHIN 60 SLIDE 60`)

	// One day of synthetic measurements for three patients in two wards.
	rng := rand.New(rand.NewSource(7))
	rates := []float64{62, 71, 80}
	var incident *cogra.Subscription
	for t := int64(0); t < 600; t++ {
		p := rng.Intn(3)
		rates[p] += float64(rng.Intn(7)) - 3
		ev := cogra.NewEvent("M", t).
			WithSym("patient", fmt.Sprintf("p%d", p)).
			WithSym("ward", fmt.Sprintf("w%d", p%2)).
			WithNum("rate", rates[p])
		if err := sess.Push(ev); err != nil {
			log.Fatal(err)
		}

		switch t {
		case 150:
			// Operator attaches an incident query mid-stream: rising
			// heart-rate trends per ward. Routing froze on patient at the
			// first event, and ward does not cover it, so the session
			// routes this query to an executor group. Its first report
			// covers the first window starting after t=150.
			incident = mustSubscribe(sess, "incident", `
				RETURN COUNT(*)
				PATTERN M+
				SEMANTICS skip-till-any-match
				WHERE [ward] AND M.rate < NEXT(M).rate
				GROUP-BY ward
				WITHIN 60 SLIDE 60`)
			fmt.Printf("t=150: incident query attached (executor groups: %d)\n", groupCount(sess))
		case 450:
			// Incident closed: detach the query; its remaining open
			// windows flush here, its engine memory is released, and its
			// executor group — now empty — retires.
			fmt.Println("t=450: incident query detached; final windows:")
			for _, r := range incident.Unsubscribe() {
				fmt.Printf("  incident  %v\n", r)
			}
			fmt.Printf("t=450: executor groups after detach: %d\n", groupCount(sess))
		}
	}

	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	shown, total := 0, 0
	for r := range dashboard.Results() {
		if shown < 4 {
			fmt.Printf("  dashboard %v\n", r)
			shown++
		}
		total++
	}
	fmt.Printf("dashboard observed %d window results end to end (first %d above)\n", total, shown)

	st, err := sess.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session: %d events, %d interned types, %d interned attrs\n",
		st.Events, st.InternedTypes, st.InternedAttrs)
}

func groupCount(sess *cogra.Session) int {
	st, err := sess.Stats()
	if err != nil {
		log.Fatal(err)
	}
	return st.ExecutorGroups
}

func mustSubscribe(sess *cogra.Session, name, src string) *cogra.Subscription {
	sub, err := sess.Subscribe(cogra.MustParse(src))
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return sub
}
