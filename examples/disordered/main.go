// Disordered: ingesting a real-world source whose events arrive out
// of order. The paper assumes an in-order stream (§2.1); production
// sources — sensors behind flaky uplinks, partitioned message buses —
// deliver within a disorder bound instead. WithSlack(k) puts a
// K-slack buffer in front of the watermark: events are re-sorted
// within k time units, stragglers beyond that follow the late policy
// (dropped and counted by default, or rejected with ErrLateEvent),
// and results are identical to the sorted stream.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	cogra "repro"
)

func main() {
	q := cogra.MustParse(`
		RETURN COUNT(*), MAX(M.rate)
		PATTERN M+
		SEMANTICS skip-till-any-match
		WHERE [sensor]
		GROUP-BY sensor
		WITHIN 60 SLIDE 60`)

	// A sensor feed: in-order at the source, then shuffled within a
	// bounded window — the shape network jitter produces.
	rng := rand.New(rand.NewSource(11))
	var feed []*cogra.Event
	rate := 50.0
	for t := int64(0); t < 300; t++ {
		rate += float64(rng.Intn(5)) - 2
		e := cogra.NewEvent("M", t).
			WithSym("sensor", fmt.Sprintf("s%d", rng.Intn(3))).
			WithNum("rate", rate)
		e.ID = t + 1
		feed = append(feed, e)
	}
	for i := 0; i+4 < len(feed); i += 5 {
		rng.Shuffle(5, func(a, b int) { feed[i+a], feed[i+b] = feed[i+b], feed[i+a] })
	}

	sess := cogra.NewSession(cogra.WithSlack(8)) // jitter bound: 8 ticks
	sub, err := sess.Subscribe(q)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.PushBatch(feed); err != nil {
		log.Fatal(err)
	}

	// A straggler from before the slack horizon: dropped and counted
	// under the default DropLate policy.
	if err := sess.Push(cogra.NewEvent("M", 0).WithSym("sensor", "s0").WithNum("rate", 1)); err != nil {
		log.Fatal(err)
	}
	st, err := sess.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d events; %d dropped late; reorder buffer peaked at %d events\n",
		st.Events, st.LateDropped, st.ReorderPeakDepth)

	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	shown := 0
	for r := range sub.Results() {
		if shown == 6 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %v\n", r)
		shown++
	}

	// The same straggler under RejectLate fails the Push instead, with
	// a typed error the caller can branch on.
	strict := cogra.NewSession(cogra.WithSlack(8), cogra.WithLatePolicy(cogra.RejectLate))
	if _, err := strict.Subscribe(q); err != nil {
		log.Fatal(err)
	}
	if err := strict.Push(cogra.NewEvent("M", 100).WithSym("sensor", "s0").WithNum("rate", 1)); err != nil {
		log.Fatal(err)
	}
	err = strict.Push(cogra.NewEvent("M", 1).WithSym("sensor", "s0").WithNum("rate", 1))
	fmt.Printf("RejectLate straggler: err=%v (ErrLateEvent: %v)\n", err, errors.Is(err, cogra.ErrLateEvent))
	if err := strict.Close(); err != nil {
		log.Fatal(err)
	}
}
