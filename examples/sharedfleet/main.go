// Sharedfleet: shared trend aggregation across a query fleet. Eight
// dashboards watch the same ascending-measurement trend — identical
// PATTERN, SEMANTICS, WHERE, GROUP-BY and WITHIN — and differ only in
// the aggregates their RETURN clauses project. Without sharing, the
// session runs eight engines that each re-match the Kleene pattern
// and re-aggregate every trend; WithSharedAggregation folds them into
// one *sharing group*: a host engine computes the union of the eight
// aggregation specs once per trend, and each query's answer is a
// cheap projection of the union row at emission.
//
// Whether sharing pays depends on the stream, so the decision is
// taken at runtime, per window epoch: a burstiness monitor compares
// the group's per-epoch event volume against its fleet size and flips
// between shared and per-query execution — only ever at a window
// boundary, so results are byte-identical either way. The stream
// below has a dense phase (sharing wins: eight-fold work collapses
// into one pass), then a sparse phase (per-query execution wins: the
// host's union bookkeeping is overhead at a trickle), then a dense
// phase again; Stats() shows the group forming, the flips, and the
// aggregation passes the host saved.
package main

import (
	"fmt"
	"log"
	"math/rand"

	cogra "repro"
)

// fleetReturns: eight distinct answers over one trend computation.
var fleetReturns = [8]string{
	"COUNT(*)",
	"COUNT(M)",
	"SUM(M.rate)",
	"AVG(M.rate)",
	"MAX(M.rate)",
	"MIN(M.rate)",
	"COUNT(*), SUM(M.rate)",
	"COUNT(*), AVG(M.rate)",
}

const fleetBody = `
	PATTERN M+
	SEMANTICS skip-till-next-match
	WHERE [patient] AND M.rate <= NEXT(M).rate
	GROUP-BY patient
	WITHIN 60 SLIDE 60`

func main() {
	sess := cogra.NewSession(cogra.WithSharedAggregation())

	subs := make([]*cogra.Subscription, len(fleetReturns))
	for i, ret := range fleetReturns {
		var err error
		if subs[i], err = sess.Subscribe(cogra.MustParse("RETURN " + ret + "\n" + fleetBody)); err != nil {
			log.Fatal(err)
		}
	}

	// Three phases of synthetic measurements for three patients:
	// dense (25 events per time step), sparse (one event every 10
	// steps — under one per window-epoch per member), dense again.
	rng := rand.New(rand.NewSource(7))
	rates := []float64{62, 71, 80}
	push := func(t int64) {
		p := rng.Intn(3)
		rates[p] += float64(rng.Intn(7)) - 3
		ev := cogra.NewEvent("M", t).
			WithSym("patient", fmt.Sprintf("p%d", p)).
			WithNum("rate", rates[p])
		if err := sess.Push(ev); err != nil {
			log.Fatal(err)
		}
	}
	for t := int64(0); t < 240; t++ {
		for i := 0; i < 25; i++ {
			push(t)
		}
	}
	report(sess, "after the dense phase (one host computes all eight)")
	for t := int64(240); t < 480; t += 10 {
		push(t)
	}
	report(sess, "after the sparse phase (fleet flipped back to per-query)")
	for t := int64(480); t < 720; t++ {
		for i := 0; i < 25; i++ {
			push(t)
		}
	}
	report(sess, "after the second dense phase (shared again)")

	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	// Every query kept its own answer shape throughout — the same
	// results, window for window, a per-query fleet would produce.
	for i, sub := range subs {
		results := sub.Drain()
		fmt.Printf("  RETURN %-22s -> %d window results, first: %v\n",
			fleetReturns[i], len(results), results[0])
	}
}

func report(sess *cogra.Session, phase string) {
	st, err := sess.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n  sharing groups: %d, share/unshare flips: %d, aggregation passes saved: %d\n",
		phase, st.SharedGroups, st.ShareFlips, st.SharedSavedOps)
}
