// Ridesharing analytics: query q2 of the paper. An Uber-pool trip is
// one Accept, one or more (Call, Cancel) pairs and one Finish, all
// with the same driver; skip-till-next-match skips the in-transit and
// drop-off noise in between. The query counts completable trips per
// driver. This example also demonstrates the partition-parallel
// executor of §8: the [driver] equivalence predicate partitions the
// stream, so sub-streams run on worker goroutines and return exactly
// the results of the sequential engine.
package main

import (
	"fmt"
	"log"

	cogra "repro"
	"repro/internal/gen"
)

func main() {
	q, err := cogra.Parse(`
		RETURN driver, COUNT(*)
		PATTERN SEQ(Accept, (SEQ(Call, Cancel))+, Finish)
		SEMANTICS skip-till-next-match
		WHERE [driver] GROUP-BY driver
		WITHIN 10 minutes SLIDE 30 seconds`)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := cogra.Compile(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)

	events := gen.Rideshare(gen.RideshareConfig{
		Seed: 3, Trips: 400, Drivers: 8, NoiseFraction: 0.4,
	})

	// Sequential reference.
	eng := cogra.NewEngine(plan)
	for _, e := range events {
		if err := eng.Process(e.Clone()); err != nil {
			log.Fatal(err)
		}
	}
	sequential := eng.Close()

	// Partition-parallel execution on four workers.
	exec, err := cogra.NewParallelExecutor(plan, 4)
	if err != nil {
		log.Fatal(err)
	}
	cloned := make([]*cogra.Event, len(events))
	for i, e := range events {
		cloned[i] = e.Clone()
	}
	if err := exec.Run(cogra.FromSlice(cloned)); err != nil {
		log.Fatal(err)
	}
	parallel, err := exec.Close()
	if err != nil {
		log.Fatal(err)
	}

	if len(sequential) != len(parallel) {
		log.Fatalf("parallel execution diverged: %d vs %d results", len(sequential), len(parallel))
	}
	for i := range sequential {
		if sequential[i].String() != parallel[i].String() {
			log.Fatalf("result %d diverged:\n  %v\n  %v", i, sequential[i], parallel[i])
		}
	}
	fmt.Printf("%d window results, parallel == sequential; first 8:\n", len(parallel))
	for i, r := range parallel {
		if i == 8 {
			break
		}
		fmt.Println(r)
	}
}
