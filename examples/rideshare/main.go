// Ridesharing analytics: query q2 of the paper. An Uber-pool trip is
// one Accept, one or more (Call, Cancel) pairs and one Finish, all
// with the same driver; skip-till-next-match skips the in-transit and
// drop-off noise in between. The query counts completable trips per
// driver. This example also demonstrates partition parallelism (§8):
// the [driver] equivalence predicate partitions the stream, so a
// 4-worker session routes sub-streams onto worker goroutines and
// returns exactly the results of the inline session.
package main

import (
	"fmt"
	"log"

	cogra "repro"
	"repro/internal/gen"
)

func main() {
	src := `
		RETURN driver, COUNT(*)
		PATTERN SEQ(Accept, (SEQ(Call, Cancel))+, Finish)
		SEMANTICS skip-till-next-match
		WHERE [driver] GROUP-BY driver
		WITHIN 10 minutes SLIDE 30 seconds`

	events := gen.Rideshare(gen.RideshareConfig{
		Seed: 3, Trips: 400, Drivers: 8, NoiseFraction: 0.4,
	})

	run := func(opts ...cogra.SessionOption) []cogra.Result {
		sess := cogra.NewSession(opts...)
		sub, err := sess.Subscribe(cogra.MustParse(src))
		if err != nil {
			log.Fatal(err)
		}
		cloned := make([]*cogra.Event, len(events))
		for i, e := range events {
			cloned[i] = e.Clone()
		}
		if err := sess.PushBatch(cloned); err != nil {
			log.Fatal(err)
		}
		if err := sess.Close(); err != nil {
			log.Fatal(err)
		}
		return sub.Drain()
	}

	sequential := run()                   // inline on this goroutine
	parallel := run(cogra.WithWorkers(4)) // routed by [driver]

	if len(sequential) != len(parallel) {
		log.Fatalf("parallel execution diverged: %d vs %d results", len(sequential), len(parallel))
	}
	for i := range sequential {
		if sequential[i].String() != parallel[i].String() {
			log.Fatalf("result %d diverged:\n  %v\n  %v", i, sequential[i], parallel[i])
		}
	}
	fmt.Printf("%d window results, parallel == sequential; first 8:\n", len(parallel))
	for i, r := range parallel {
		if i == 8 {
			break
		}
		fmt.Println(r)
	}
}
