#!/usr/bin/env bash
# Crash-recovery smoke: run cograql -follow with periodic checkpoints,
# SIGKILL it at a checkpoint boundary, restore from the checkpoint,
# feed the stream suffix, and require the concatenated output to be
# byte-identical to an undisturbed run. Also checks that a stale temp
# checkpoint (a crash mid-write) is refused. Run from the repo root.
set -euo pipefail

DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

go build -o "$DIR/cograql" ./cmd/cograql
go build -o "$DIR/cogragen" ./cmd/cogragen

Q='RETURN COUNT(*), MAX(Stock.price) PATTERN Stock+ SEMANTICS skip-till-next-match WHERE [company] AND Stock.price <= NEXT(Stock).price GROUP-BY company WITHIN 100 SLIDE 50'
CUT=1500

"$DIR/cogragen" -dataset stock -events 3000 > "$DIR/stream.csv"

# Reference: the undisturbed run.
"$DIR/cograql" -follow -query "$Q" < "$DIR/stream.csv" > "$DIR/full.out"

# Crash run: feed the header + CUT events through a pipe held open so
# the process idles after its checkpoint at exactly event CUT, then
# SIGKILL it mid-stream.
mkfifo "$DIR/feed"
(head -n $((CUT + 1)) "$DIR/stream.csv" > "$DIR/feed"; sleep 60 > "$DIR/feed") &
FEEDER=$!
"$DIR/cograql" -follow -query "$Q" -checkpoint "$DIR/ck.snap" -checkpoint-every "$CUT" \
  < "$DIR/feed" > "$DIR/prefix.out" 2> "$DIR/prefix.err" &
CRASH=$!
for _ in $(seq 1 300); do
  grep -q "checkpoint .* @ $CUT events" "$DIR/prefix.err" 2>/dev/null && break
  sleep 0.1
done
grep -q "checkpoint .* @ $CUT events" "$DIR/prefix.err" || {
  echo "crash_smoke: checkpoint never appeared" >&2
  cat "$DIR/prefix.err" >&2
  exit 1
}
kill -9 "$CRASH" 2>/dev/null || true
kill "$FEEDER" 2>/dev/null || true
wait "$CRASH" 2>/dev/null || true
wait "$FEEDER" 2>/dev/null || true

# A stale temp checkpoint must be refused.
touch "$DIR/ck.snap.tmp"
if "$DIR/cograql" -follow -restore "$DIR/ck.snap.tmp" < /dev/null > /dev/null 2>&1; then
  echo "crash_smoke: restore accepted a temp checkpoint" >&2
  exit 1
fi

# Restore and feed the suffix: the header plus data lines CUT+1 onward.
# head and tail each open the file themselves — sharing one fd between
# them silently drops a line at the seam.
head -n 1 "$DIR/stream.csv" > "$DIR/suffix.csv"
tail -n +$((CUT + 2)) "$DIR/stream.csv" >> "$DIR/suffix.csv"
"$DIR/cograql" -follow -restore "$DIR/ck.snap" < "$DIR/suffix.csv" > "$DIR/suffix.out"

cat "$DIR/prefix.out" "$DIR/suffix.out" > "$DIR/recovered.out"
diff "$DIR/recovered.out" "$DIR/full.out" || {
  echo "crash_smoke: recovered output differs from the undisturbed run" >&2
  exit 1
}
echo "crash_smoke: PASS (killed at event $CUT; $(wc -l < "$DIR/full.out") result lines byte-identical)"
