#!/usr/bin/env bash
# Server smoke: run cograd, subscribe a query over HTTP, push the first
# half of a generated stream, drain the results seen so far, SIGTERM
# the server mid-stream (graceful drain checkpoints every tenant),
# restart it from the checkpoint directory, push the second half, close
# the tenant and drain the rest — then require part1+part2 to be
# byte-identical to an embedded cograql run over the whole stream. The
# network service must add zero result drift: not across tenants, not
# across a restart. Run from the repo root.
set -euo pipefail

DIR=$(mktemp -d)
trap 'rm -rf "$DIR"; kill "$SRV" 2>/dev/null || true' EXIT

go build -o "$DIR/cograd" ./cmd/cograd
go build -o "$DIR/cograql" ./cmd/cograql
go build -o "$DIR/cogragen" ./cmd/cogragen
go build -o "$DIR/client" ./examples/cograd-client

Q='RETURN COUNT(*), MAX(Stock.price) PATTERN Stock+ SEMANTICS skip-till-next-match WHERE [company] AND Stock.price <= NEXT(Stock).price GROUP-BY company WITHIN 100 SLIDE 50'
CUT=1500
PORT=18080
ADDR="http://127.0.0.1:$PORT"

"$DIR/cogragen" -dataset stock -events 3000 > "$DIR/stream.csv"

# Reference: the undisturbed embedded run. cograql's -follow mode tags
# lines with the query index; the served stream is per-query already.
"$DIR/cograql" -follow -query "$Q" < "$DIR/stream.csv" | sed 's/^\[q1\] //' > "$DIR/full.out"

start_server() {
  "$DIR/cograd" -addr "127.0.0.1:$PORT" -checkpoint-dir "$DIR/ck" > "$DIR/cograd.log" 2>&1 &
  SRV=$!
  for _ in $(seq 1 300); do
    curl -sf "$ADDR/healthz" > /dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server_smoke: cograd never became healthy" >&2
  cat "$DIR/cograd.log" >&2
  exit 1
}

start_server
ID=$("$DIR/client" -addr "$ADDR" -tenant smoke -mode subscribe -query "$Q")
"$DIR/client" -addr "$ADDR" -tenant smoke -mode push -input "$DIR/stream.csv" -to "$CUT"
"$DIR/client" -addr "$ADDR" -tenant smoke -mode drain -id "$ID" > "$DIR/part1.out"

# Graceful drain: SIGTERM checkpoints the tenant (unconsumed results
# ride along) and the process exits cleanly.
kill -TERM "$SRV"
wait "$SRV" || {
  echo "server_smoke: cograd exited non-zero on SIGTERM" >&2
  cat "$DIR/cograd.log" >&2
  exit 1
}
[ -n "$(ls "$DIR/ck" 2>/dev/null)" ] || {
  echo "server_smoke: no checkpoint written on drain" >&2
  exit 1
}

# Restart from the checkpoint: the subscription keeps its id, the
# session resumes mid-window, and the stream suffix continues exactly
# where the prefix left off.
start_server
"$DIR/client" -addr "$ADDR" -tenant smoke -mode push -input "$DIR/stream.csv" -from "$CUT"
"$DIR/client" -addr "$ADDR" -tenant smoke -mode close
"$DIR/client" -addr "$ADDR" -tenant smoke -mode drain -id "$ID" > "$DIR/part2.out"
kill -TERM "$SRV"
wait "$SRV" || true

cat "$DIR/part1.out" "$DIR/part2.out" > "$DIR/served.out"
diff "$DIR/served.out" "$DIR/full.out" || {
  echo "server_smoke: served results differ from the embedded run" >&2
  exit 1
}
echo "server_smoke: PASS (SIGTERM at event $CUT; $(wc -l < "$DIR/full.out") result lines byte-identical across restart)"
