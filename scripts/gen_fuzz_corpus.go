//go:build ignore

// gen_fuzz_corpus regenerates the committed seed corpus for
// FuzzSnapshotDecode (testdata/fuzz/FuzzSnapshotDecode). It builds the
// same kind of valid snapshot as the fuzz target's programmatic seed —
// three granularities subscribed, one unsubscribed (tombstoned catalog
// ids), a slack buffer holding events, intern eviction on, a
// mid-stream cut — then writes that snapshot plus the canonical
// corruption mutants (truncations, a bit flip, a version skew, an
// oversized declared length, an empty input, a bare magic) as Go fuzz
// corpus files. Run from the repo root:
//
//	go run scripts/gen_fuzz_corpus.go
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	cogra "repro"
)

const corpusDir = "testdata/fuzz/FuzzSnapshotDecode"

// seedStream mirrors the shape of the test suite's session stream:
// A/B sequences, M measurement walks and X noise over three patients,
// dense equal-timestamp runs and idle gaps. Deterministic (fixed rand
// seed) so regeneration is reproducible.
func seedStream(n int) []*cogra.Event {
	rng := rand.New(rand.NewSource(17))
	rates := [3]float64{60, 70, 80}
	out := make([]*cogra.Event, 0, n)
	tm := int64(0)
	for i := 0; i < n; i++ {
		p := rng.Intn(3)
		patient := fmt.Sprintf("p%d", p)
		ward := fmt.Sprintf("w%d", rng.Intn(2))
		var ev *cogra.Event
		switch x := rng.Intn(10); {
		case x < 3:
			ev = cogra.NewEvent("A", tm).WithSym("patient", patient).
				WithSym("ward", ward).WithNum("v", float64(rng.Intn(100)))
		case x < 5:
			ev = cogra.NewEvent("B", tm).WithSym("patient", patient).
				WithSym("ward", ward).WithNum("v", float64(rng.Intn(100)))
		case x < 8:
			rates[p] += float64(rng.Intn(7)) - 3
			ev = cogra.NewEvent("M", tm).WithSym("patient", patient).
				WithSym("ward", ward).WithNum("rate", rates[p])
		default:
			ev = cogra.NewEvent("X", tm).WithSym("patient", patient).
				WithSym("ward", ward).WithNum("noise", 1)
		}
		ev.ID = int64(i + 1)
		out = append(out, ev)
		switch rng.Intn(8) {
		case 0, 1, 2: // dense run: same time stamp
		case 7:
			tm += 30 + int64(rng.Intn(150)) // idle gap spanning windows
		default:
			tm++
		}
	}
	return out
}

// shuffleBounded shuffles within fixed-size blocks and reports the
// slack needed to repair the disorder.
func shuffleBounded(events []*cogra.Event, block int, seed int64) ([]*cogra.Event, int64) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*cogra.Event, len(events))
	copy(out, events)
	for i := 0; i+block-1 < len(out); i += block {
		rng.Shuffle(block, func(a, b int) {
			out[i+a], out[i+b] = out[i+b], out[i+a]
		})
	}
	var slack, maxSeen int64
	for i, e := range out {
		if i == 0 || e.Time > maxSeen {
			maxSeen = e.Time
		}
		if d := maxSeen - e.Time; d > slack {
			slack = d
		}
	}
	return out, slack
}

func seedSnapshot() ([]byte, error) {
	queries := map[string]string{
		"type": `
			RETURN COUNT(*), SUM(A.v)
			PATTERN (SEQ(A+, B))+
			SEMANTICS skip-till-any-match
			WHERE [patient] GROUP-BY patient
			WITHIN 64 SLIDE 32`,
		"pattern": `
			RETURN COUNT(*)
			PATTERN M+
			SEMANTICS skip-till-next-match
			WHERE [patient] AND M.rate <= NEXT(M).rate
			GROUP-BY patient
			WITHIN 96 SLIDE 48`,
		"mixed": `
			RETURN COUNT(*), MAX(M.rate)
			PATTERN M+
			SEMANTICS skip-till-any-match
			WHERE [patient] AND M.rate < NEXT(M).rate
			GROUP-BY patient
			WITHIN 64 SLIDE 64`,
	}
	shuffled, slack := shuffleBounded(seedStream(400), 6, 7)
	sess := cogra.NewSession(cogra.WithSlack(slack), cogra.WithInternEviction())
	for _, name := range []string{"type", "pattern"} {
		if _, err := sess.Subscribe(cogra.MustParse(queries[name])); err != nil {
			return nil, fmt.Errorf("subscribe %s: %w", name, err)
		}
	}
	extra, err := sess.Subscribe(cogra.MustParse(queries["mixed"]))
	if err != nil {
		return nil, fmt.Errorf("subscribe mixed: %w", err)
	}
	if err := sess.PushBatch(shuffled[:300]); err != nil {
		return nil, err
	}
	extra.Unsubscribe()
	var buf bytes.Buffer
	if err := sess.Snapshot(&buf); err != nil {
		return nil, err
	}
	if err := sess.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeCorpus(name string, data []byte) error {
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	return os.WriteFile(filepath.Join(corpusDir, name), []byte(body), 0o644)
}

func main() {
	valid, err := seedSnapshot()
	if err != nil {
		log.Fatal("gen_fuzz_corpus: ", err)
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		log.Fatal("gen_fuzz_corpus: ", err)
	}

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	skewed := append([]byte(nil), valid...)
	skewed[8] = 0xff // version word
	oversized := append([]byte(nil), valid...)
	for i := 12; i < 20; i++ {
		oversized[i] = 0xff // declared payload length far beyond the data
	}

	seeds := []struct {
		name string
		data []byte
	}{
		{"seed_valid", valid},
		{"seed_truncated_payload", valid[:len(valid)/2]},
		{"seed_truncated_header", valid[:11]},
		{"seed_bitflip", flipped},
		{"seed_version_skew", skewed},
		{"seed_oversized_length", oversized},
		{"seed_empty", nil},
		{"seed_magic_only", []byte("COGRASNP")},
	}
	for _, s := range seeds {
		if err := writeCorpus(s.name, s.data); err != nil {
			log.Fatal("gen_fuzz_corpus: ", err)
		}
	}
	fmt.Printf("gen_fuzz_corpus: wrote %d seeds to %s (valid snapshot: %d bytes)\n",
		len(seeds), corpusDir, len(valid))
}
