package cogra

import "repro/internal/core"

// Sentinel errors of the session data plane. Every error the public
// API returns for one of these conditions wraps the sentinel, so
// callers branch with errors.Is instead of parsing messages:
//
//	if err := sess.Push(e); errors.Is(err, cogra.ErrLateEvent) {
//	    metrics.late++ // source exceeded the configured slack
//	}
var (
	// ErrClosed: the session (or the queried subsystem) was closed;
	// Push, Subscribe, Unsubscribe, Drain and a second Close all wrap
	// it once the stream has ended.
	ErrClosed = core.ErrClosed

	// ErrLateEvent: an event arrived older than the stream watermark
	// minus the configured slack (zero without WithSlack). Sessions
	// with WithLatePolicy(RejectLate) return it from Push/PushBatch;
	// DropLate sessions count the event in Stats instead.
	ErrLateEvent = core.ErrLateEvent

	// ErrNotHosted: the operation names a query this session does not
	// host — already unsubscribed, an unknown id, or a plan compiled
	// against a foreign catalog.
	ErrNotHosted = core.ErrNotHosted

	// ErrFrozenRouting: a StrictRouting subscription was rejected
	// because events already flowed (the partition routing is frozen)
	// and the query's partition keys do not cover the routing
	// attributes; without StrictRouting such a query is hosted on the
	// full-stream fallback worker instead.
	ErrFrozenRouting = core.ErrFrozenRouting

	// ErrBackpressure: the slack reorder buffer hit its configured
	// maximum depth (WithMaxReorderDepth) under the Reject policy and
	// the offered event would not have released any buffered one.
	// Push/PushBatch return it without ingesting the event; the session
	// stays usable — retry once the stream's watermark has advanced.
	ErrBackpressure = core.ErrBackpressure

	// ErrBadSnapshot: Restore could not decode the checkpoint stream —
	// truncated, corrupted (checksum mismatch), written by a different
	// snapshot format version, or structurally impossible. Decoding
	// never panics and never over-allocates on corrupt input.
	ErrBadSnapshot = core.ErrBadSnapshot

	// ErrSinkPanic: a user-supplied Sink callback panicked while a
	// result was being delivered. The panic is recovered, the stream
	// and the other subscriptions keep running, and the affected
	// subscription fails with an error wrapping this sentinel (its
	// further results are buffered, readable via Results/Drain).
	ErrSinkPanic = core.ErrSinkPanic
)
