package cogra

// Session is the serving-shaped public API: one long-lived object over
// one live event stream, hosting a dynamic population of queries.
// Queries subscribe and unsubscribe at any stream position — before,
// between, or after events — so the engine behaves like a service a
// fleet of users attaches queries to, not a batch artifact frozen at
// compile time.
//
//	sess := cogra.NewSession()                   // or cogra.WithWorkers(4)
//	sub, _ := sess.Subscribe(q1)                 // before the stream
//	for i, e := range events {
//	    if err := sess.Process(e); err != nil { ... }
//	    if i == 1000 {
//	        late, _ = sess.Subscribe(q2)         // mid-stream
//	    }
//	}
//	for _, r := range late.Unsubscribe() { ... } // detach, flush windows
//	sess.Close()
//	for _, r := range sub.Drain() { ... }
//
// Partial-first-window semantics: a query subscribed mid-stream at
// watermark t (the time stamp of the last event the session saw) may
// have missed events of every window that covers t, so those windows
// are suppressed and the query's results start from the first FULLY
// covered window — the first window whose start lies strictly after
// t. From that window on, its results are byte-identical to a query
// that had been subscribed all along.
//
// Under the hood, subscription compiles the query against the
// session's shared catalog, which interns symbols copy-on-write
// (epochs), so running engines and resolvers are never invalidated by
// mid-stream compilation. With WithWorkers(n > 1) the session routes
// events to partition workers and membership changes travel to every
// worker on the event channels themselves, taking effect at one
// consistent stream position; a late query whose partition keys do
// not cover the frozen routing attributes is hosted on a dedicated
// full-stream fallback worker instead (see MultiExecutor).
//
// A Session is single-threaded like the engines it hosts: all methods
// (including Subscribe/Unsubscribe) must be called from the event
// feeding goroutine. Parallelism happens inside, behind WithWorkers.
// OnResult callbacks may fire inside Process; membership changes from
// within a callback are rejected with an error — note what should
// change and apply it after Process returns.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/stream"
)

// SessionOption configures a Session.
type SessionOption func(*sessionCfg)

type sessionCfg struct {
	workers int
}

// WithWorkers runs the session partition-parallel on n workers (n > 1;
// n <= 1 keeps the session inline on the caller's goroutine). Events
// are routed by the partition attributes the subscribed queries share;
// see MultiExecutor for the routing and fallback rules.
func WithWorkers(n int) SessionOption {
	return func(c *sessionCfg) { c.workers = n }
}

// Session hosts a dynamic fleet of queries over one event stream.
type Session struct {
	cat    *core.Catalog
	rt     *runtime.Runtime      // inline mode (workers <= 1)
	mx     *stream.MultiExecutor // parallel mode (workers > 1)
	acct   metrics.Accountant    // inline mode: spans every hosted engine
	subs   []*Subscription
	closed bool
}

// NewSession returns an empty session over a fresh catalog.
func NewSession(opts ...SessionOption) *Session {
	var cfg sessionCfg
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &Session{cat: core.NewCatalog()}
	if cfg.workers > 1 {
		s.mx = stream.NewMultiExecutorOn(s.cat, cfg.workers)
	} else {
		s.rt = runtime.NewOn(s.cat)
	}
	return s
}

// Catalog returns the session's shared catalog, for compiling plans
// with CompileIn ahead of SubscribePlan.
func (s *Session) Catalog() *Catalog { return s.cat }

// SubscribeOption configures one subscription.
type SubscribeOption func(*subCfg)

type subCfg struct {
	cb func(Result)
}

// OnResult streams the subscription's results to fn instead of
// collecting them for Drain/Unsubscribe. Inline sessions invoke fn as
// each window closes; parallel sessions invoke it when results are
// gathered from the workers (Drain, Unsubscribe, Close).
func OnResult(fn func(Result)) SubscribeOption {
	return func(c *subCfg) { c.cb = fn }
}

// Subscribe compiles a query against the session's catalog and
// attaches it to the stream at the current position. Callable at any
// point; a mid-stream subscriber reports results from its first fully
// covered window (see the type comment).
func (s *Session) Subscribe(q *Query, opts ...SubscribeOption) (*Subscription, error) {
	if s.closed {
		return nil, fmt.Errorf("cogra: Subscribe after Close")
	}
	plan, err := core.NewPlanIn(s.cat, q)
	if err != nil {
		return nil, err
	}
	return s.SubscribePlan(plan, opts...)
}

// SubscribePlan attaches an already-compiled plan; it must have been
// compiled against the session's catalog (CompileIn).
func (s *Session) SubscribePlan(plan *Plan, opts ...SubscribeOption) (*Subscription, error) {
	if s.closed {
		return nil, fmt.Errorf("cogra: Subscribe after Close")
	}
	var cfg subCfg
	for _, opt := range opts {
		opt(&cfg)
	}
	sub := &Subscription{sess: s, id: len(s.subs), plan: plan, active: true}
	if s.rt != nil {
		engOpts := []EngineOption{core.WithAccountant(&s.acct)}
		if cfg.cb != nil {
			engOpts = append(engOpts, core.WithResultCallback(cfg.cb))
		}
		rsub, err := s.rt.SubscribePlan(plan, engOpts...)
		if err != nil {
			return nil, err
		}
		sub.rsub = rsub
	} else {
		msub, err := s.mx.SubscribePlan(plan)
		if err != nil {
			return nil, err
		}
		if cfg.cb != nil {
			if err := s.mx.OnResult(msub.ID(), cfg.cb); err != nil {
				return nil, err
			}
		}
		sub.msub = msub
	}
	s.subs = append(s.subs, sub)
	return sub, nil
}

// Process consumes the next stream event for every subscribed query.
// Events must arrive in non-decreasing time-stamp order.
func (s *Session) Process(e *Event) error {
	if s.closed {
		return fmt.Errorf("cogra: Process after Close")
	}
	if s.rt != nil {
		return s.rt.Process(e)
	}
	return s.mx.Process(e)
}

// ProcessAll feeds a pre-sorted batch of events.
func (s *Session) ProcessAll(events []*Event) error {
	for _, e := range events {
		if err := s.Process(e); err != nil {
			return err
		}
	}
	return nil
}

// Run consumes an entire ordered source.
func (s *Session) Run(src Iterator) error {
	for {
		e, ok := src.Next()
		if !ok {
			return nil
		}
		if err := s.Process(e); err != nil {
			return err
		}
	}
}

// Close ends the stream: every still-subscribed query flushes its open
// windows. Results go to the subscription's callback when one is
// installed, and are otherwise retrievable with Drain after Close.
func (s *Session) Close() error {
	if s.closed {
		return fmt.Errorf("cogra: double Close")
	}
	s.closed = true
	if s.rt != nil {
		results := s.rt.Close()
		for _, sub := range s.subs {
			if sub.active {
				sub.active = false
				sub.pending = append(sub.pending, results[sub.rsub.ID()]...)
			}
		}
		return nil
	}
	results, err := s.mx.Close()
	for _, sub := range s.subs {
		if sub.active {
			sub.active = false
			if err == nil {
				sub.pending = append(sub.pending, results[sub.msub.ID()]...)
			} else {
				sub.err = err
			}
		}
	}
	return err
}

// SessionStats summarises a session's hosted state.
type SessionStats struct {
	// Queries is the number of active subscriptions; Workers the
	// worker count (1 for inline sessions; parallel sessions count the
	// full-stream fallback worker when it is running).
	Queries int
	Workers int
	// Events is the number of events the session accepted; Skipped
	// counts events a parallel session could not route (missing a
	// routing attribute).
	Events  int64
	Skipped int64
	// InternedTypes and InternedAttrs are the id-space sizes of the
	// session's shared symbol catalog (they grow as queries subscribe
	// and never shrink — ids must stay stable).
	InternedTypes int
	InternedAttrs int
	// RoutingAttrs are the partition attributes a parallel session
	// routes events by; empty with Workers > 1 means the subscribed
	// queries share no partition attribute, so every event goes to one
	// worker (nil for inline sessions).
	RoutingAttrs []string
	// BindingInternBytes is the live footprint of the hosted engines'
	// binding intern tables; unsubscribing a query releases its share.
	BindingInternBytes int64
	// PeakBytes is the peak logical memory across the session's
	// engines (summed across workers in parallel mode).
	PeakBytes int64
}

// Stats reports the session's hosted-query, interning and memory
// state at the current stream position.
func (s *Session) Stats() (SessionStats, error) {
	if s.rt != nil {
		rs := s.rt.Stats()
		return SessionStats{
			Queries:            rs.Queries,
			Workers:            1,
			Events:             rs.Events,
			InternedTypes:      rs.InternedTypes,
			InternedAttrs:      rs.InternedAttrs,
			BindingInternBytes: rs.BindingInternBytes,
			PeakBytes:          s.acct.Peak(),
		}, nil
	}
	ms, err := s.mx.Stats()
	if err != nil {
		return SessionStats{}, err
	}
	return SessionStats{
		Queries:            ms.Queries,
		Workers:            ms.Workers,
		Events:             ms.Events,
		Skipped:            ms.Skipped,
		InternedTypes:      ms.InternedTypes,
		InternedAttrs:      ms.InternedAttrs,
		RoutingAttrs:       ms.RoutingAttrs,
		BindingInternBytes: ms.BindingInternBytes,
		PeakBytes:          ms.PeakBytes,
	}, nil
}

// Subscription is one query hosted by a Session: the handle for its
// results and lifecycle.
type Subscription struct {
	sess    *Session
	id      int
	plan    *Plan
	rsub    *runtime.Subscription
	msub    *stream.Sub
	active  bool
	pending []Result
	err     error
}

// ID returns the subscription's id: 0-based, in Subscribe order,
// stable across membership changes.
func (sub *Subscription) ID() int { return sub.id }

// Plan returns the compiled plan of the hosted query.
func (sub *Subscription) Plan() *Plan { return sub.plan }

// Active reports whether the subscription still receives events.
func (sub *Subscription) Active() bool { return sub.active }

// Err returns the subscription's error state: the first error a
// lifecycle call (Unsubscribe, Drain, Close) recorded for it.
func (sub *Subscription) Err() error { return sub.err }

// Unsubscribe detaches the query from the stream at the current
// position. Its open windows are flushed and returned (or delivered
// to the callback), its engines are released, and its binding intern
// memory is returned. The rest of the fleet is untouched. Failures
// are recorded on Err; a rejected unsubscribe (e.g. called from
// inside a result callback) leaves the subscription active, so it can
// be retried once Process returns.
func (sub *Subscription) Unsubscribe() []Result {
	if sub.sess.closed {
		sub.err = fmt.Errorf("cogra: Unsubscribe after Close")
		return nil
	}
	if !sub.active {
		sub.err = fmt.Errorf("cogra: query %d already unsubscribed", sub.id)
		return nil
	}
	var out []Result
	var err error
	if sub.rsub != nil {
		out, err = sub.rsub.Unsubscribe()
	} else {
		out, err = sub.msub.Unsubscribe()
	}
	if err != nil {
		sub.err = err
		// A rejected membership change (inline mode) leaves the query
		// hosted: stay active for a retry. The parallel executor only
		// errors after detaching, so its partial results still count.
		if sub.rsub != nil {
			return nil
		}
	}
	sub.active = false
	return append(sub.takePending(), out...)
}

// Drain returns the results whose windows have closed since the last
// Drain (all remaining results once the session is closed) and clears
// them; nil when a callback streams results instead. On a partial
// worker failure it returns what the healthy workers reported and
// records the error (Err). In parallel sessions each Drain is
// internally ordered by window then group, but windows from a lagging
// worker may appear in a later Drain.
func (sub *Subscription) Drain() []Result {
	if !sub.active {
		return sub.takePending()
	}
	var out []Result
	var err error
	if sub.rsub != nil {
		out = sub.rsub.Drain()
	} else {
		out, err = sub.msub.Drain()
	}
	if err != nil {
		// Drained results were destructively taken from the workers;
		// hand over what the healthy ones reported and record the error.
		sub.err = err
	}
	return append(sub.takePending(), out...)
}

func (sub *Subscription) takePending() []Result {
	out := sub.pending
	sub.pending = nil
	return out
}
