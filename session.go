package cogra

// Session is the serving-shaped public API: one long-lived object over
// one live event stream, hosting a dynamic population of queries.
// Queries subscribe and unsubscribe at any stream position — before,
// between, or after events — so the engine behaves like a service a
// fleet of users attaches queries to, not a batch artifact frozen at
// compile time.
//
//	sess := cogra.NewSession()                   // or cogra.WithWorkers(4)
//	sub, _ := sess.Subscribe(q1)                 // before the stream
//	for i, batch := range batches {
//	    if err := sess.PushBatch(batch); err != nil { ... }
//	    for r := range sub.Results() { ... }     // pull what has closed
//	    if i == 7 {
//	        late, _ = sess.Subscribe(q2)         // mid-stream
//	    }
//	}
//	for _, r := range late.Unsubscribe() { ... } // detach, flush windows
//	sess.Close()
//	for r := range sub.Results() { ... }         // remaining windows
//
// Ingest is batch-first: Push and PushBatch are the primary entry
// points, and batches flow natively down the stack (the multi-query
// runtime pays its dispatch prologue once per batch; the parallel
// router appends straight into the per-worker batches in flight).
// Sources with bounded disorder are accepted with WithSlack(k): a
// K-slack buffer (stream.Reorderer) re-sorts events in front of the
// watermark, and events later than the slack allows follow the
// session's late policy — counted and dropped (DropLate, default) or
// rejected with ErrLateEvent (RejectLate). With no WithSlack the
// stream must be in non-decreasing time-stamp order, as the paper
// assumes (§2.1).
//
// Egress is push or pull, per subscription: WithSink (or the OnResult
// shim) streams results as windows close; otherwise results buffer
// and Subscription.Results() returns a pull-based iterator over what
// has become available (stopping early keeps the rest buffered).
//
// Partial-first-window semantics: a query subscribed mid-stream at
// watermark t (the time stamp of the last event the session saw) may
// have missed events of every window that covers t, so those windows
// are suppressed and the query's results start from the first FULLY
// covered window — the first window whose start lies strictly after
// t. From that window on, its results are byte-identical to a query
// that had been subscribed all along.
//
// Under the hood, subscription compiles the query against the
// session's shared catalog, which interns symbols copy-on-write
// (epochs), so running engines and resolvers are never invalidated by
// mid-stream compilation. With WithWorkers(n > 1) the session routes
// events to partition workers and membership changes travel to every
// worker on the event channels themselves, taking effect at one
// consistent stream position; a late query whose partition keys do
// not cover the frozen routing attributes is hosted on a dedicated
// full-stream fallback worker instead (see MultiExecutor), or
// rejected with ErrFrozenRouting when subscribed with StrictRouting.
//
// Memory is bounded end to end on a long-lived session: WithSlack's
// reorder buffer can be capped (WithMaxReorderDepth, shedding or
// rejecting at the cap), the binding intern tables of hosted engines
// can rotate in window-expiry epochs (WithInternEviction), and the
// catalog retires type/attr ids no hosted query references anymore
// (automatic at unsubscribe), so subscribe/unsubscribe churn and
// high-cardinality keys no longer grow state without bound.
//
// A Session is single-threaded like the engines it hosts: all methods
// (including Subscribe/Unsubscribe) must be called from the event
// feeding goroutine — except Stats, which may be called from any
// goroutine concurrently with Push/PushBatch (it synchronises with
// ingest internally). Parallelism happens inside, behind WithWorkers.
// Sink callbacks may fire inside Push; session calls from within a
// callback are not allowed — membership changes are rejected with an
// error, and Stats would deadlock — note what should change and apply
// it after Push returns.

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/stream"
)

// SessionOption configures a Session.
type SessionOption func(*sessionCfg)

type sessionCfg struct {
	workers  int
	groups   int
	slack    int64
	reorder  bool
	late     LatePolicy
	maxDepth int
	depth    DepthPolicy
	evict    bool
	shared   bool
}

// WithWorkers runs the session partition-parallel on n workers (n > 1;
// n <= 1 keeps the session inline on the caller's goroutine). Events
// are routed by the partition attributes the subscribed queries share;
// see MultiExecutor for the routing and fallback rules.
func WithWorkers(n int) SessionOption {
	return func(c *sessionCfg) { c.workers = n }
}

// WithExecutorGroups lets up to k executor groups run side by side
// (k > 1; the default is one). Executor groups host the queries that
// cannot be partition-routed — the fleet shares no partition
// attribute with them, or they subscribed after routing froze — and
// each group receives the full stream in order. Queries are clustered
// onto groups by compatible partition attributes: same partition-key
// signature, same group (they share one resolve pass); incompatible
// queries spread across groups and execute in parallel, up to k. A
// group whose last subscriber unsubscribes is retired at the next
// membership change or Sync barrier. With k > 1 the session runs in
// parallel mode even when WithWorkers was not given.
func WithExecutorGroups(k int) SessionOption {
	return func(c *sessionCfg) { c.groups = k }
}

// WithSlack accepts bounded-disorder sources: a K-slack buffer in
// front of the watermark re-emits events in (time, ID) order as long
// as no event arrives more than slack time units later than the
// maximum time stamp already seen. Events beyond the slack follow the
// session's late policy (WithLatePolicy). Slack 0 still admits only
// in-order streams but applies the late policy to stragglers instead
// of failing the whole stream. Buffered events are released when the
// watermark passes them, and flushed at Close.
func WithSlack(slack int64) SessionOption {
	if slack < 0 {
		slack = 0
	}
	return func(c *sessionCfg) { c.slack, c.reorder = slack, true }
}

// LatePolicy selects what a session with WithSlack does with an event
// that arrives later than the slack allows.
type LatePolicy int

const (
	// DropLate drops the event and counts it (Stats.LateDropped) — the
	// serving default: one straggling source does not fail the stream.
	DropLate LatePolicy = iota
	// RejectLate makes Push/PushBatch return an error wrapping
	// ErrLateEvent; the event is not ingested and the session remains
	// usable.
	RejectLate
)

// WithLatePolicy sets the late-event policy of a WithSlack session
// (default DropLate). Without WithSlack the policy is moot: any
// out-of-order event fails Push with ErrLateEvent, as in-order input
// is the stream contract.
func WithLatePolicy(p LatePolicy) SessionOption {
	return func(c *sessionCfg) { c.late = p }
}

// DepthPolicy selects what a depth-capped slack buffer
// (WithMaxReorderDepth) does when it is full.
type DepthPolicy int

const (
	// ShedOldest force-drains the oldest buffered events to make room —
	// the serving default: they are dispatched immediately (early, but
	// in order) and counted in Stats.ReorderShed; later arrivals older
	// than a shed event are dropped as late.
	ShedOldest DepthPolicy = iota
	// Reject makes Push/PushBatch return an error wrapping
	// ErrBackpressure when the buffer is full and the offered event
	// would not release any buffered one; the event is not ingested and
	// the session remains usable.
	Reject
)

// WithMaxReorderDepth caps the WithSlack reorder buffer at n events
// (n <= 0: unbounded, the default), so one misbehaving source — a
// stalled watermark under a firehose of in-window events — cannot
// balloon it. Overflow follows the session's depth policy
// (WithDepthPolicy, default ShedOldest). Without WithSlack there is
// no buffer and the option has no effect.
func WithMaxReorderDepth(n int) SessionOption {
	return func(c *sessionCfg) { c.maxDepth = n }
}

// WithDepthPolicy sets the overflow policy of a depth-capped slack
// buffer (default ShedOldest).
func WithDepthPolicy(p DepthPolicy) SessionOption {
	return func(c *sessionCfg) { c.depth = p }
}

// WithInternEviction bounds the binding-intern tables of every hosted
// engine: intern liveness is tied to window expiry (entries rotate in
// Within-length epochs and are reclaimed once no open window can
// reference them), so Stats().BindingInternBytes plateaus under
// rotating key cardinality instead of growing with the stream's
// lifetime cardinality. Results are byte-identical to an unbounded
// session.
func WithInternEviction() SessionOption {
	return func(c *sessionCfg) { c.evict = true }
}

// WithSharedAggregation lets the session share aggregation work
// across queries with a common sub-pattern (paper §5, "Shared Trend
// Aggregation"). Queries whose plans are sharing-equivalent — same
// PATTERN, SEMANTICS, WHERE, GROUP BY and WITHIN clause; only their
// RETURN lists differ — are clustered into sharing groups. A group the
// runtime decides to share executes ONE host engine computing the
// union of the members' aggregation specs, and each member's results
// are projected out of the union at emission, so the per-event
// matching and aggregation work is paid once for the whole group
// instead of once per query.
//
// The share/unshare decision is revisited at runtime: a per-epoch
// monitor watches the group's event volume and flips the group between
// shared and per-query execution, always at a window boundary, so
// results stay byte-identical to an unshared session under every flip
// sequence. Stats reports the live group count and flip totals
// (SharedGroups, ShareFlips, SharedSavedOps). In parallel sessions the
// decision is taken independently inside each worker.
func WithSharedAggregation() SessionOption {
	return func(c *sessionCfg) { c.shared = true }
}

// Session hosts a dynamic fleet of queries over one event stream.
type Session struct {
	// mu guards the ingest and stats state so Stats may be called from
	// any goroutine concurrently with Push/PushBatch. Every other
	// method still belongs to the feeding goroutine; they take the lock
	// too, so a misuse fails loudly under -race instead of corrupting
	// state silently.
	mu sync.Mutex
	// dispatching marks that an event is being dispatched (sinks may be
	// running). Only the feeding goroutine reads or writes it: it is
	// the reentrancy guard that rejects membership changes from inside
	// a sink BEFORE they would deadlock on mu.
	dispatching bool

	cfg    sessionCfg // resolved construction options, for Snapshot
	cat    *core.Catalog
	rt     *runtime.Runtime      // inline mode (workers <= 1)
	mx     *stream.MultiExecutor // parallel mode (workers > 1)
	acct   metrics.Accountant    // inline mode: spans every hosted engine
	ro     *stream.Reorderer     // nil without WithSlack
	late   LatePolicy
	evict  bool
	roPeak int
	roSeq  int64 // arrival order stamped onto ID-0 events before buffering
	mxLast int64 // parallel mode: stream-order guard (the router is async)
	mxSaw  bool
	subs   []*Subscription
	closed bool
}

// NewSession returns an empty session over a fresh catalog.
func NewSession(opts ...SessionOption) *Session {
	var cfg sessionCfg
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &Session{cfg: cfg, cat: core.NewCatalog(), late: cfg.late, evict: cfg.evict}
	if cfg.reorder {
		s.ro = stream.NewReorderer(cfg.slack)
		if cfg.maxDepth > 0 {
			// Map the public policy to the stream-level one explicitly:
			// the two enums are declared independently, and a numeric
			// cast would silently diverge if either was ever reordered.
			policy := stream.ShedOldest
			if cfg.depth == Reject {
				policy = stream.Reject
			}
			s.ro.SetMaxDepth(cfg.maxDepth, policy)
		}
	}
	var engOpts []core.Option
	if cfg.evict {
		engOpts = append(engOpts, core.WithInternEviction())
	}
	if cfg.workers > 1 || cfg.groups > 1 {
		s.mx = stream.NewMultiExecutorOn(s.cat, cfg.workers, engOpts...)
		if cfg.groups > 1 {
			s.mx.SetExecutorGroups(cfg.groups)
		}
		if cfg.shared {
			s.mx.EnableSharedAggregation()
		}
	} else {
		s.rt = runtime.NewOn(s.cat)
		if cfg.shared {
			// Host engines charge the session accountant like every member
			// engine, so PeakBytes keeps covering the whole footprint.
			s.rt.EnableSharedAggregation(append([]EngineOption{core.WithAccountant(&s.acct)}, engOpts...)...)
		}
	}
	return s
}

// Catalog returns the session's shared catalog, for compiling plans
// with CompileIn ahead of SubscribePlan.
func (s *Session) Catalog() *Catalog { return s.cat }

// Sink receives a subscription's results as they become available —
// the push half of the egress surface (Subscription.Results is the
// pull half). Inline sessions emit as each window closes; parallel
// sessions emit when results are gathered from the workers (Results,
// Drain, Unsubscribe, Close).
type Sink interface {
	Emit(Result)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Result)

// Emit implements Sink.
func (f SinkFunc) Emit(r Result) { f(r) }

// SubscribeOption configures one subscription.
type SubscribeOption func(*subCfg)

type subCfg struct {
	cb     func(Result)
	strict bool
}

// WithSink streams the subscription's results to sink instead of
// buffering them for Results/Drain/Unsubscribe.
func WithSink(sink Sink) SubscribeOption {
	return func(c *subCfg) { c.cb = sink.Emit }
}

// OnResult streams the subscription's results to fn.
//
// Deprecated: use WithSink(SinkFunc(fn)), or pull with
// Subscription.Results instead.
func OnResult(fn func(Result)) SubscribeOption {
	return func(c *subCfg) { c.cb = fn }
}

// StrictRouting rejects a mid-stream subscription with
// ErrFrozenRouting when hosting it would break worker-locality: the
// parallel session's routing is frozen (events have flowed) and the
// query's partition keys do not cover the routing attributes. Without
// this option such a query is hosted on a dedicated full-stream
// fallback worker, which preserves correctness but streams every
// event twice. Inline sessions route nothing, so the option has no
// effect there.
func StrictRouting() SubscribeOption {
	return func(c *subCfg) { c.strict = true }
}

// Subscribe compiles a query against the session's catalog and
// attaches it to the stream at the current position. Callable at any
// point; a mid-stream subscriber reports results from its first fully
// covered window (see the type comment).
func (s *Session) Subscribe(q *Query, opts ...SubscribeOption) (*Subscription, error) {
	if s.dispatching {
		return nil, fmt.Errorf("cogra: Subscribe from within a result sink; defer it until Push returns")
	}
	if s.closed {
		return nil, fmt.Errorf("cogra: Subscribe after Close: %w", ErrClosed)
	}
	plan, err := core.NewPlanIn(s.cat, q)
	if err != nil {
		return nil, err
	}
	sub, err := s.SubscribePlan(plan, opts...)
	if err != nil {
		// The plan was compiled here and will never be hosted: retire
		// the symbols it interned (where nothing else references them)
		// so failed subscribes do not leak catalog id space.
		s.cat.DiscardPlan(plan)
		return nil, err
	}
	return sub, nil
}

// SubscribePlan attaches an already-compiled plan; it must have been
// compiled against the session's catalog (CompileIn). A plan compiled
// long ago can be rejected with ErrNotHosted when an intervening
// unsubscribe compacted its symbols out of the catalog — recompile the
// query in that case.
func (s *Session) SubscribePlan(plan *Plan, opts ...SubscribeOption) (*Subscription, error) {
	if s.dispatching {
		return nil, fmt.Errorf("cogra: Subscribe from within a result sink; defer it until Push returns")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("cogra: Subscribe after Close: %w", ErrClosed)
	}
	var cfg subCfg
	for _, opt := range opts {
		opt(&cfg)
	}
	sub := &Subscription{sess: s, id: len(s.subs), plan: plan, active: true}
	if cfg.cb != nil {
		cfg.cb = guardSink(sub, cfg.cb)
	}
	if s.rt != nil {
		engOpts := []EngineOption{core.WithAccountant(&s.acct)}
		if s.evict {
			engOpts = append(engOpts, core.WithInternEviction())
		}
		if cfg.cb != nil {
			engOpts = append(engOpts, core.WithResultCallback(cfg.cb))
		}
		rsub, err := s.rt.SubscribePlan(plan, engOpts...)
		if err != nil {
			return nil, err
		}
		sub.rsub = rsub
	} else {
		var mopts []stream.SubscribeOpt
		if cfg.strict {
			mopts = append(mopts, stream.StrictRouting())
		}
		msub, err := s.mx.SubscribePlan(plan, mopts...)
		if err != nil {
			return nil, err
		}
		if cfg.cb != nil {
			if err := s.mx.OnResult(msub.ID(), cfg.cb); err != nil {
				return nil, err
			}
		}
		sub.msub = msub
	}
	s.subs = append(s.subs, sub)
	return sub, nil
}

// guardSink wraps a subscription's sink so a panic inside user code
// fails the subscription instead of tearing down the goroutine that
// happened to deliver the result (the feeding goroutine under Push, or
// a lifecycle call in parallel mode). The first panic is recorded on
// Subscription.Err wrapping ErrSinkPanic; the sink is never called
// again, and later results for the failed subscription are discarded —
// the stream and every other subscription keep running. Sinks only
// fire with the session lock held, so reading and writing sub.err here
// is race-free.
func guardSink(sub *Subscription, fn func(Result)) func(Result) {
	return func(r Result) {
		if sub.err != nil && errors.Is(sub.err, ErrSinkPanic) {
			return
		}
		defer func() {
			if p := recover(); p != nil {
				sub.err = fmt.Errorf("cogra: sink for query %d panicked: %v: %w", sub.id, p, ErrSinkPanic)
			}
		}()
		fn(r)
	}
}

// Push ingests the next stream event for every subscribed query — the
// primary single-event entry point. Without WithSlack, events must
// arrive in non-decreasing time-stamp order and an out-of-order event
// fails with ErrLateEvent; with WithSlack, events are re-ordered
// within the slack and stragglers beyond it follow the late policy.
func (s *Session) Push(e *Event) error {
	if s.dispatching {
		return fmt.Errorf("cogra: Push from within a result sink; defer it until the outer Push returns")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("cogra: Push after Close: %w", ErrClosed)
	}
	s.dispatching = true
	defer func() { s.dispatching = false }()
	if s.ro == nil {
		return s.dispatch(e)
	}
	return s.offer(e)
}

// PushBatch ingests a batch of events in arrival order — the primary
// bulk entry point; the batch flows natively down the stack (one
// dispatch prologue in inline sessions, direct appends into the
// in-flight worker batches in parallel ones). The same ordering and
// slack rules as Push apply; a returned error reports the first
// offending event, everything before it has been ingested.
func (s *Session) PushBatch(events []*Event) error {
	if s.dispatching {
		return fmt.Errorf("cogra: Push from within a result sink; defer it until the outer Push returns")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("cogra: Push after Close: %w", ErrClosed)
	}
	s.dispatching = true
	defer func() { s.dispatching = false }()
	if s.ro == nil {
		return s.dispatchBatch(events)
	}
	for _, e := range events {
		if err := s.offer(e); err != nil {
			return err
		}
	}
	return nil
}

// offer feeds one event through the slack buffer, applying the late
// and depth policies, and dispatches whatever the advancing watermark
// (or a shedding overflow) released.
func (s *Session) offer(e *Event) error {
	// The buffer re-emits in (time, ID) order and heap order among
	// equal keys is arbitrary, so source-less IDs must be stamped with
	// the arrival order HERE, before buffering — downstream (which
	// normally assigns them) only sees the re-sorted stream. Ties then
	// re-emit exactly in arrival order, matching a slack-less session.
	s.roSeq++
	assigned := false
	if e.ID == 0 {
		e.ID = s.roSeq
		assigned = true
	}
	dropped := s.ro.Dropped()
	out, err := s.ro.Offer(e)
	if err != nil {
		// Backpressure (WithMaxReorderDepth + Reject): the event was not
		// ingested, so undo the arrival-order stamp — a later retry must
		// take its ID from its NEW arrival position or ties would emit
		// out of arrival order. The error names the offending event so a
		// PushBatch caller can resume after the ingested prefix.
		if assigned {
			e.ID = 0
		}
		s.roSeq--
		return fmt.Errorf("cogra: event at time %d refused: %w", e.Time, err)
	}
	if s.ro.Dropped() != dropped && s.late == RejectLate {
		// Cite the actual drop boundary: after shedding it can sit well
		// above maxSeen-slack, and a message naming only the watermark
		// would describe an event as legal that was correctly dropped.
		return fmt.Errorf("cogra: event at time %d older than the stream's drop boundary %d (watermark minus slack, raised by shedding): %w",
			e.Time, s.ro.DropBoundary(), ErrLateEvent)
	}
	if depth := s.ro.Buffered(); depth > s.roPeak {
		s.roPeak = depth
	}
	if len(out) == 0 {
		return nil
	}
	return s.dispatchBatch(out)
}

// dispatch hands one in-order event to the execution layer. The
// inline runtime checks stream order itself; the parallel router is
// asynchronous (a worker would only surface the violation at Close),
// so the session rejects out-of-order events HERE to keep Push's
// synchronous ErrLateEvent contract — the bad event never reaches a
// worker and the session stays usable.
func (s *Session) dispatch(e *Event) error {
	if s.rt != nil {
		return s.rt.Process(e)
	}
	if s.mxSaw && e.Time < s.mxLast {
		return s.mxLateErr(e)
	}
	s.mxLast, s.mxSaw = e.Time, true
	return s.mx.Process(e)
}

// dispatchBatch hands an in-order batch to the execution layer. In
// parallel mode the batch is order-validated in one scan first (see
// dispatch), then routed natively; on a violation the good prefix is
// ingested and the error names the first offender.
func (s *Session) dispatchBatch(events []*Event) error {
	if s.rt != nil {
		return s.rt.ProcessBatch(events)
	}
	for i, e := range events {
		if s.mxSaw && e.Time < s.mxLast {
			if err := s.mx.ProcessBatch(events[:i]); err != nil {
				return err
			}
			return s.mxLateErr(e)
		}
		s.mxLast, s.mxSaw = e.Time, true
	}
	return s.mx.ProcessBatch(events)
}

// mxLateErr builds the parallel-mode out-of-order rejection — the
// cold path of dispatch.
func (s *Session) mxLateErr(e *Event) error {
	return fmt.Errorf("cogra: out-of-order event at time %d after %d: %w", e.Time, s.mxLast, ErrLateEvent)
}

// Process consumes the next stream event.
//
// Deprecated: use Push — same semantics, batch-first data plane.
func (s *Session) Process(e *Event) error { return s.Push(e) }

// ProcessAll feeds a pre-sorted batch of events.
//
// Deprecated: use PushBatch.
func (s *Session) ProcessAll(events []*Event) error { return s.PushBatch(events) }

// Run consumes an entire ordered source.
func (s *Session) Run(src Iterator) error {
	return s.RunContext(context.Background(), src)
}

// RunContext consumes a source until it is exhausted or ctx is
// cancelled. Cancellation is observed between events — a source
// blocked inside Next delays it until Next returns, so a live source
// should make Next return promptly (poll with a timeout, or close the
// feed). On cancellation the session stops pulling from src, waits
// until the workers have consumed everything already pushed (so Stats
// and Drain observe a consistent cut), and returns the context error;
// the session stays usable — push more, subscribe, or Close.
func (s *Session) RunContext(ctx context.Context, src Iterator) error {
	done := ctx.Done()
	for {
		select {
		case <-done:
			if s.mx != nil {
				s.mu.Lock()
				err := s.mx.Sync()
				s.mu.Unlock()
				if err != nil {
					return err
				}
			}
			return ctx.Err()
		default:
		}
		e, ok := src.Next()
		if !ok {
			return nil
		}
		if err := s.Push(e); err != nil {
			return err
		}
	}
}

// Close ends the stream: the slack buffer (if any) is flushed, and
// every still-subscribed query flushes its open windows. Results go
// to the subscription's sink when one is installed, and are otherwise
// retrievable with Results or Drain after Close.
func (s *Session) Close() error {
	if s.dispatching {
		return fmt.Errorf("cogra: Close from within a result sink; defer it until Push returns")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("cogra: double Close: %w", ErrClosed)
	}
	s.dispatching = true
	defer func() { s.dispatching = false }()
	if s.ro != nil {
		if tail := s.ro.Flush(); len(tail) > 0 {
			if err := s.dispatchBatch(tail); err != nil {
				return err
			}
		}
	}
	s.closed = true
	if s.rt != nil {
		results := s.rt.Close()
		for _, sub := range s.subs {
			if sub.active {
				sub.active = false
				sub.pending = append(sub.pending, results[sub.rsub.ID()]...)
			}
		}
		return nil
	}
	results, err := s.mx.Close()
	for _, sub := range s.subs {
		if sub.active {
			sub.active = false
			if err == nil {
				sub.pending = append(sub.pending, results[sub.msub.ID()]...)
			} else {
				sub.err = err
			}
		}
	}
	return err
}

// SessionStats summarises a session's hosted state.
type SessionStats struct {
	// Queries is the number of active subscriptions; Workers the
	// worker count (1 for inline sessions; parallel sessions count
	// running executor groups too). ExecutorGroups counts the running
	// executor groups alone (0 for inline sessions and while none
	// hosts a subscriber).
	Queries        int
	Workers        int
	ExecutorGroups int
	// Events is the number of events the session accepted; Skipped
	// counts events a parallel session could not route (missing a
	// routing attribute).
	Events  int64
	Skipped int64
	// LateDropped counts events that arrived later than the slack
	// allowed and were not ingested (WithSlack sessions; under
	// RejectLate they additionally failed the Push that carried them).
	// ReorderDepth is the current number of events held back by the
	// slack buffer awaiting the watermark; ReorderPeakDepth its
	// high-water mark over the session's lifetime. ReorderShed counts
	// buffered events force-drained early by a full depth-capped buffer
	// (WithMaxReorderDepth under ShedOldest).
	LateDropped      int64
	ReorderDepth     int
	ReorderPeakDepth int
	ReorderShed      int64
	// InternedTypes and InternedAttrs are the live id-space sizes of
	// the session's shared symbol catalog. They grow as queries
	// subscribe; unsubscribing releases symbols no remaining query
	// references, so churn no longer ratchets them up (ids of hosted
	// queries stay stable throughout). CatalogCompactions counts the
	// compacted snapshots published so far. InternedTypeSlots and
	// InternedAttrSlots are the physical id-space sizes including
	// tombstoned slots awaiting recycling; compaction truncates
	// trailing tombstones, so churn that retires the highest ids
	// shrinks the slot counts back toward the live counts.
	InternedTypes      int
	InternedAttrs      int
	InternedTypeSlots  int
	InternedAttrSlots  int
	CatalogCompactions uint64
	// RoutingAttrs are the partition attributes a parallel session
	// routes events by; empty with Workers > 1 means the subscribed
	// queries share no partition attribute, so every event goes to one
	// worker (nil for inline sessions).
	RoutingAttrs []string
	// BindingInternBytes is the live footprint of the hosted engines'
	// binding intern tables; unsubscribing a query releases its share.
	BindingInternBytes int64
	// PeakBytes is the peak logical memory across the session's
	// engines (summed across workers in parallel mode).
	PeakBytes int64
	// SharedGroups counts the sharing groups currently backed by a host
	// engine (WithSharedAggregation sessions; summed across workers in
	// parallel mode). ShareFlips counts share/unshare decisions taken
	// over the session's lifetime, and SharedSavedOps estimates the
	// per-event aggregation passes sharing saved — host events times the
	// members served beyond the first.
	SharedGroups   int
	ShareFlips     int64
	SharedSavedOps int64
	// Watermark is the stream position: the time stamp of the last
	// event dispatched to the execution layer (events still held by a
	// WithSlack reorder buffer have not been dispatched yet).
	// WatermarkValid is false before the first dispatched event. Both
	// survive Snapshot/Restore, like every other counter here.
	Watermark      int64
	WatermarkValid bool
}

// Stats reports the session's hosted-query, interning, disorder and
// memory state at the current stream position. Unlike the rest of the
// Session surface, Stats is safe to call from any goroutine while the
// feeding goroutine keeps working — not just Push/PushBatch but the
// whole feeding-goroutine surface (Subscribe, Unsubscribe, Close,
// Snapshot): it synchronises on the session's lock, which every one of
// those methods holds for its critical section. That makes it the
// shard-safe stats snapshot a serving layer scrapes from a metrics
// goroutine while a shard goroutine owns the session (cograd does
// exactly this). Stats keeps working after Close — it reports the
// final stream position. Do not call it from inside a result sink —
// the lock is already held there.
func (s *Session) Stats() (SessionStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st SessionStats
	if s.rt != nil {
		rs := s.rt.Stats()
		st = SessionStats{
			Queries:            rs.Queries,
			Workers:            1,
			Events:             rs.Events,
			InternedTypes:      rs.InternedTypes,
			InternedAttrs:      rs.InternedAttrs,
			BindingInternBytes: rs.BindingInternBytes,
			PeakBytes:          s.acct.Peak(),
			SharedGroups:       rs.SharedGroups,
			ShareFlips:         rs.ShareFlips,
			SharedSavedOps:     rs.SharedSavedOps,
			Watermark:          rs.Watermark,
			WatermarkValid:     rs.WatermarkValid,
		}
	} else {
		ms, err := s.mx.Stats()
		if err != nil {
			return SessionStats{}, err
		}
		st = SessionStats{
			Queries:            ms.Queries,
			Workers:            ms.Workers,
			ExecutorGroups:     ms.Groups,
			Events:             ms.Events,
			Skipped:            ms.Skipped,
			InternedTypes:      ms.InternedTypes,
			InternedAttrs:      ms.InternedAttrs,
			RoutingAttrs:       ms.RoutingAttrs,
			BindingInternBytes: ms.BindingInternBytes,
			PeakBytes:          ms.PeakBytes,
			SharedGroups:       ms.SharedGroups,
			ShareFlips:         ms.ShareFlips,
			SharedSavedOps:     ms.SharedSavedOps,
			Watermark:          s.mxLast,
			WatermarkValid:     s.mxSaw,
		}
	}
	if s.ro != nil {
		st.LateDropped = s.ro.Dropped()
		st.ReorderDepth = s.ro.Buffered()
		st.ReorderPeakDepth = s.roPeak
		st.ReorderShed = s.ro.Shed()
	}
	st.InternedTypeSlots = s.cat.NumTypeSlots()
	st.InternedAttrSlots = s.cat.NumAttrSlots()
	st.CatalogCompactions = s.cat.Compactions()
	return st, nil
}

// Subscription is one query hosted by a Session: the handle for its
// results and lifecycle.
type Subscription struct {
	sess    *Session
	id      int
	plan    *Plan
	rsub    *runtime.Subscription
	msub    *stream.Sub
	active  bool
	pending []Result
	err     error
}

// ID returns the subscription's id: 0-based, in Subscribe order,
// stable across membership changes.
func (sub *Subscription) ID() int { return sub.id }

// Plan returns the compiled plan of the hosted query.
func (sub *Subscription) Plan() *Plan { return sub.plan }

// Active reports whether the subscription still receives events.
func (sub *Subscription) Active() bool { return sub.active }

// Err returns the subscription's error state: the first error a
// lifecycle call (Unsubscribe, Drain, Close) recorded for it.
func (sub *Subscription) Err() error { return sub.err }

// Results returns a pull-based iterator over the results that have
// become available (windows closed by the advancing watermark, plus
// everything remaining once the session is closed). Consumed results
// are gone; breaking out of the loop early keeps the unconsumed rest
// buffered for the next Results or Drain call. Each call returns a
// fresh single-use iterator:
//
//	for r := range sub.Results() {
//	    if overloaded { break } // the rest stays buffered
//	    handle(r)
//	}
//
// Empty when a sink streams the results instead. In parallel sessions
// each iterator's results are ordered by window then group, but a
// lagging worker's windows may surface in a later call (exactly like
// Drain).
func (sub *Subscription) Results() iter.Seq[Result] {
	return func(yield func(Result) bool) {
		buf := sub.Drain()
		for i, r := range buf {
			if !yield(r) {
				rest := make([]Result, 0, len(buf)-i-1+len(sub.pending))
				rest = append(rest, buf[i+1:]...)
				sub.pending = append(rest, sub.pending...)
				return
			}
		}
	}
}

// Unsubscribe detaches the query from the stream at the current
// position. Its open windows are flushed and returned (or delivered
// to the sink), its engines are released, and its binding intern
// memory is returned. The rest of the fleet is untouched. Failures
// are recorded on Err; a rejected unsubscribe (e.g. called from
// inside a result sink) leaves the subscription active, so it can
// be retried once Push returns.
func (sub *Subscription) Unsubscribe() []Result {
	s := sub.sess
	if s.dispatching {
		sub.err = fmt.Errorf("cogra: Unsubscribe from within a result sink; defer it until Push returns")
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		sub.err = fmt.Errorf("cogra: Unsubscribe after Close: %w", ErrClosed)
		return nil
	}
	if !sub.active {
		sub.err = fmt.Errorf("cogra: query %d already unsubscribed: %w", sub.id, ErrNotHosted)
		return nil
	}
	s.dispatching = true
	defer func() { s.dispatching = false }()
	var out []Result
	var err error
	if sub.rsub != nil {
		out, err = sub.rsub.Unsubscribe()
	} else {
		out, err = sub.msub.Unsubscribe()
	}
	if err != nil {
		sub.err = err
		// A rejected membership change (inline mode) leaves the query
		// hosted: stay active for a retry. The parallel executor only
		// errors after detaching, so its partial results still count.
		if sub.rsub != nil {
			return nil
		}
	}
	sub.active = false
	return append(sub.takePending(), out...)
}

// Drain returns the results whose windows have closed since the last
// Drain (all remaining results once the session is closed) and clears
// them; nil when a sink streams results instead. On a partial
// worker failure it returns what the healthy workers reported and
// records the error (Err). In parallel sessions each Drain is
// internally ordered by window then group, but windows from a lagging
// worker may appear in a later Drain.
func (sub *Subscription) Drain() []Result {
	s := sub.sess
	if s.dispatching {
		// Called from inside a result sink: the session lock is held by
		// the Push that fired the sink, so only the already-buffered
		// pending results are reachable without deadlocking.
		return sub.takePending()
	}
	// The drain reaches shared ingest state (the parallel router's
	// pending batches, the inline engines' result buffers), which a
	// concurrent Stats call also walks — serialise on the session lock.
	s.mu.Lock()
	defer s.mu.Unlock()
	if !sub.active {
		return sub.takePending()
	}
	// Parallel-mode drains deliver to sinks synchronously: mark the
	// dispatch so a sink calling back into the session hits the
	// reentrancy rejections above instead of deadlocking on mu.
	s.dispatching = true
	defer func() { s.dispatching = false }()
	var out []Result
	var err error
	if sub.rsub != nil {
		out = sub.rsub.Drain()
	} else {
		out, err = sub.msub.Drain()
	}
	if err != nil {
		// Drained results were destructively taken from the workers;
		// hand over what the healthy ones reported and record the error.
		sub.err = err
	}
	return append(sub.takePending(), out...)
}

func (sub *Subscription) takePending() []Result {
	out := sub.pending
	sub.pending = nil
	return out
}
