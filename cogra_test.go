package cogra_test

import (
	"bytes"
	"strings"
	"testing"

	cogra "repro"
	"repro/internal/core"
)

// TestPublicAPIQuickstart exercises the README quickstart end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	q := cogra.MustParse(`
		RETURN COUNT(*)
		PATTERN (SEQ(A+, B))+
		SEMANTICS skip-till-any-match
		WITHIN 100 SLIDE 100`)
	plan := cogra.MustCompile(q)
	if plan.Granularity != cogra.TypeGrained {
		t.Fatalf("granularity = %v", plan.Granularity)
	}
	eng := cogra.NewEngine(plan)
	for _, e := range figure2Stream() {
		if err := eng.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	res := eng.Close()
	if len(res) != 1 || res[0].Values[0].Count != 43 {
		t.Fatalf("results = %v", res)
	}
}

// TestPublicAPIBuilder builds q3 programmatically and checks the
// granularity selector's output.
func TestPublicAPIBuilder(t *testing.T) {
	q := cogra.NewQuery(
		cogra.Seq(cogra.Plus(cogra.TypeAs("Stock", "A")), cogra.Plus(cogra.TypeAs("Stock", "B")))).
		Return(cogra.Avg("B", "price")).
		Semantics(cogra.SkipTillAnyMatch).
		WhereEquiv(cogra.EquivalencePredicate{Alias: "A", Attr: "company"}).
		WhereEquiv(cogra.EquivalencePredicate{Alias: "B", Attr: "company"}).
		WhereAdjacent(cogra.AdjacentPredicate{
			Left: "A", LeftAttr: "price", Op: cogra.Gt, Right: "A", RightAttr: "price"}).
		GroupBy(cogra.GroupKey{Alias: "A", Attr: "company"}, cogra.GroupKey{Alias: "B", Attr: "company"}).
		Within(600, 10).
		MustBuild()
	plan := cogra.MustCompile(q)
	if plan.Granularity != cogra.MixedGrained {
		t.Fatalf("granularity = %v, want mixed", plan.Granularity)
	}
	if !plan.EventGrained["A"] || plan.EventGrained["B"] {
		t.Fatalf("event-grained set = %v", plan.EventGrained)
	}
}

// TestPublicAPIAggSpecs checks the spec constructors render the
// RETURN clause of the paper's queries.
func TestPublicAPIAggSpecs(t *testing.T) {
	for want, spec := range map[string]string{
		"COUNT(*)":    cogra.CountStar().String(),
		"COUNT(M)":    cogra.CountType("M").String(),
		"MIN(M.rate)": cogra.Min("M", "rate").String(),
		"MAX(M.rate)": cogra.Max("M", "rate").String(),
		"SUM(B.x)":    cogra.Sum("B", "x").String(),
		"AVG(B.p)":    cogra.Avg("B", "p").String(),
	} {
		if want != spec {
			t.Errorf("spec renders %q, want %q", spec, want)
		}
	}
}

// TestCSVRoundTrip exercises the heterogeneous CSV codec.
func TestCSVRoundTrip(t *testing.T) {
	events := []*cogra.Event{
		cogra.NewEvent("Accept", 1).WithSym("driver", "d1"),
		cogra.NewEvent("Stock", 2).WithSym("company", "IBM").WithNum("price", 101.5),
		cogra.NewEvent("Stock", 3).WithSym("company", "HP").WithNum("price", 7),
	}
	var buf bytes.Buffer
	if err := cogra.WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := cogra.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("len = %d", len(back))
	}
	if back[0].Type != "Accept" || back[0].Sym["driver"] != "d1" {
		t.Errorf("event 0 = %v", back[0])
	}
	if _, ok := back[0].NumAttr("price"); ok {
		t.Error("absent attribute resurrected from empty cell")
	}
	if back[1].Num["price"] != 101.5 || back[2].Num["price"] != 7 {
		t.Errorf("prices lost: %v %v", back[1], back[2])
	}
}

func TestCSVErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"wrong,header\n",
		"time,type\nx,A\n",
		"time,type,p:num\n1,A,notnum\n",
		"time,type,a,b\n1,A,only-one-cell\n",
	} {
		if _, err := cogra.ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("ReadCSV(%q) accepted", src)
		}
	}
	// Blank lines are tolerated.
	events, err := cogra.ReadCSV(strings.NewReader("time,type\n1,A\n\n2,B\n"))
	if err != nil || len(events) != 2 {
		t.Errorf("blank-line handling: %v, %v", events, err)
	}
}

// TestQ1Q2Q3Compile compiles all three paper queries through the
// public API and checks their granularities (Table 4).
func TestQ1Q2Q3Compile(t *testing.T) {
	cases := []struct {
		src  string
		want cogra.Granularity
	}{
		{`RETURN patient, MIN(M.rate), MAX(M.rate)
		  PATTERN Measurement M+
		  SEMANTICS contiguous
		  WHERE [patient] AND M.rate < NEXT(M).rate AND M.activity = passive
		  GROUP-BY patient
		  WITHIN 10 minutes SLIDE 30 seconds`, cogra.PatternGrained},
		{`RETURN driver, COUNT(*)
		  PATTERN SEQ(Accept, (SEQ(Call, Cancel))+, Finish)
		  SEMANTICS skip-till-next-match
		  WHERE [driver] GROUP-BY driver
		  WITHIN 10 minutes SLIDE 30 seconds`, cogra.PatternGrained},
		{`RETURN sector, A.company, B.company, AVG(B.price)
		  PATTERN SEQ(Stock A+, Stock B+)
		  SEMANTICS skip-till-any-match
		  WHERE [A.company] AND [B.company] AND A.price > NEXT(A).price
		  GROUP-BY sector, A.company, B.company
		  WITHIN 10 minutes SLIDE 10 seconds`, cogra.MixedGrained},
	}
	for i, c := range cases {
		plan, err := cogra.Compile(cogra.MustParse(c.src))
		if err != nil {
			t.Fatalf("q%d: %v", i+1, err)
		}
		if plan.Granularity != c.want {
			t.Errorf("q%d granularity = %v, want %v", i+1, plan.Granularity, c.want)
		}
	}
}

// TestMergeStreams exercises the k-way merge through the public API.
func TestMergeStreams(t *testing.T) {
	s1 := cogra.FromSlice([]*cogra.Event{cogra.NewEvent("A", 1), cogra.NewEvent("A", 5)})
	s2 := cogra.FromSlice([]*cogra.Event{cogra.NewEvent("B", 3)})
	m := cogra.MergeStreams(s1, s2)
	var times []int64
	for {
		e, ok := m.Next()
		if !ok {
			break
		}
		times = append(times, e.Time)
	}
	if len(times) != 3 || times[0] != 1 || times[1] != 3 || times[2] != 5 {
		t.Errorf("merged times = %v", times)
	}
}

// TestEngineResultCallbackAndAccounting exercises the remaining
// public engine options.
func TestEngineResultCallbackAndAccounting(t *testing.T) {
	q := cogra.MustParse(`RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10`)
	var acct cogra.Accountant
	var got []cogra.Result
	eng := cogra.NewEngine(cogra.MustCompile(q),
		cogra.WithAccountant(&acct),
		cogra.WithResultCallback(func(r cogra.Result) { got = append(got, r) }))
	eng.Process(cogra.NewEvent("A", 1))
	eng.Process(cogra.NewEvent("A", 2))
	if res := eng.Close(); res != nil {
		t.Errorf("Close returned %v with callback installed", res)
	}
	if len(got) != 1 || got[0].Values[0].Count != 3 {
		t.Errorf("callback results = %v", got)
	}
	if acct.Peak() == 0 {
		t.Error("accountant saw nothing")
	}
}

// TestPlanAliasExport sanity-checks that core types flow through the
// public aliases.
func TestPlanAliasExport(t *testing.T) {
	var p *cogra.Plan = cogra.MustCompile(cogra.MustParse(`RETURN COUNT(*) PATTERN A+ WITHIN 1 SLIDE 1`))
	var _ *core.Plan = p // same type
	if p.Granularity.String() != "type" {
		t.Errorf("granularity = %v", p.Granularity)
	}
}
